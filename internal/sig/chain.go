package sig

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/model"
)

// Chain signatures (paper §4).
//
// A message with a chain signature has been signed by a sequence of nodes,
// each one signing the signed message of its predecessor. The paper
// additionally requires that "a message which has been signed before is
// always signed together with the name of the node it is assigned to", so
// the full structure is
//
//	{P_{K-1}, { … {P_0, {m}_{S_0}}_{S_1} … }}_{S_K}
//
// The innermost signature carries no name: its assignee is learned either
// from the enclosing layer's embedded name or — for the outermost layer —
// from the identity of the immediate sender (network property N2). This is
// exactly what lets Theorem 4 go through: every sub-message is pinned to a
// named node, so two correct nodes either make identical assignments for
// every layer or one of them discovers a failure.
//
// On the wire a chain is encoded flat (value, names, signatures); the
// nested encodings exist only as signature payloads. A chain caches its
// own nested encoding: Extend derives the next one from the cache with a
// single append-style pass instead of re-encoding every layer, and Verify
// recomputes the per-layer payloads in one forward sweep over two pooled
// scratch buffers. A chain built by NewChain/Extend carries the cache from
// birth; one parsed by UnmarshalChain fills it on first use (Verify or
// Extend), so the usual receive→verify→extend hop never encodes the same
// layer twice.

// Domain-separation tags for chain signature payloads. Distinct tags keep
// a signature obtained in one context (e.g. a key-distribution challenge
// response) from being replayed as another kind of statement.
const (
	tagChainValue = "fd/chain-value/v1"
	tagChainLink  = "fd/chain-link/v1"
)

// Chain verification errors.
var (
	// ErrChainEmpty reports a chain with no signatures.
	ErrChainEmpty = errors.New("sig: empty signature chain")
	// ErrChainEncoding reports a malformed wire encoding.
	ErrChainEncoding = errors.New("sig: malformed chain encoding")
	// ErrChainUnknownSigner reports a layer assigned to a node for which
	// the verifier accepted no test predicate.
	ErrChainUnknownSigner = errors.New("sig: chain layer assigned to node with no accepted predicate")
	// ErrChainBadSignature reports a layer whose signature fails its
	// assigned node's test predicate.
	ErrChainBadSignature = errors.New("sig: chain signature failed test predicate")
)

// Directory resolves the test predicate a verifying node has accepted for
// each peer. Under local authentication each node holds its own directory,
// built by the key-distribution protocol; directories of different correct
// nodes agree on correct nodes' predicates (G2) but may differ on faulty
// nodes' (the G3 gap).
type Directory interface {
	// PredicateOf returns the accepted predicate for node, if any.
	// Implementations should return the same predicate value on every
	// call for a given node: chain verification caches a digest per
	// predicate instance, so a stable value keeps that cache from
	// growing with every call.
	PredicateOf(node model.NodeID) (TestPredicate, bool)
}

// Chain is a parsed chain-signed message. The zero value is not useful;
// build chains with NewChain and Chain.Extend. A Chain is immutable after
// construction except for its lazily-filled nested-encoding cache, so a
// single Chain must not be verified from multiple goroutines concurrently.
type Chain struct {
	// value is the innermost payload m.
	value []byte
	// names[k] is the embedded assignee name for signature layer k,
	// k = 0..len(sigs)-2. The outermost layer has no embedded name; its
	// assignee is the immediate sender.
	names []model.NodeID
	// sigs[k] is the signature of layer k, innermost first.
	sigs [][]byte
	// nested caches the chain's nested encoding — the byte string the
	// next signer would sign together with an assignee name. nil only for
	// chains fresh off the wire; filled by nestedEncoding.
	nested []byte
}

// NewChain creates the innermost chain message {value}_{signer}: the
// originator's statement. The originator's name is NOT part of the wire
// encoding; the first receiver attributes the signature to the immediate
// sender, and any later signer pins that name into the next layer.
func NewChain(value []byte, signer Signer) (*Chain, error) {
	e := GetEncoder()
	e.Grow(BytesFieldSize(len(tagChainValue)) + BytesFieldSize(len(value)))
	e.Raw(appendValuePayload(e.Encoding(), value))
	sig, err := signer.Sign(e.Encoding())
	e.Release()
	if err != nil {
		return nil, fmt.Errorf("sig: sign chain value: %w", err)
	}
	v := make([]byte, len(value))
	copy(v, value)
	nested := make([]byte, 0, BytesFieldSize(len(v))+BytesFieldSize(len(sig)))
	nested = appendNestedRoot(nested, v, sig)
	return &Chain{value: v, sigs: [][]byte{sig}, nested: nested}, nil
}

// Extend returns a new chain with one more signature layer: the caller
// signs the existing chain together with outerAssignee, the name of the
// node the caller assigns the current outermost signature to (in the
// protocols of this repository, the node it received the chain from).
// The receiver chain is not modified. The new chain's nested encoding is
// derived from the receiver's cache in one pass — no per-layer
// re-encoding.
func (c *Chain) Extend(outerAssignee model.NodeID, signer Signer) (*Chain, error) {
	if len(c.sigs) == 0 {
		return nil, ErrChainEmpty
	}
	nested := c.nestedEncoding()
	e := GetEncoder()
	e.Grow(BytesFieldSize(len(tagChainLink)) + IntFieldSize + BytesFieldSize(len(nested)))
	e.Raw(appendLinkPayload(e.Encoding(), outerAssignee, nested))
	sig, err := signer.Sign(e.Encoding())
	e.Release()
	if err != nil {
		return nil, fmt.Errorf("sig: sign chain link: %w", err)
	}
	// The per-layer signature slices are never mutated, so the new chain
	// shares them and only the spines (and the value, which Value exposes)
	// are fresh.
	value := make([]byte, len(c.value))
	copy(value, c.value)
	sigs := make([][]byte, len(c.sigs)+1)
	copy(sigs, c.sigs)
	sigs[len(c.sigs)] = sig
	next := make([]byte, 0, IntFieldSize+BytesFieldSize(len(nested))+BytesFieldSize(len(sig)))
	next = appendNestedLayer(next, outerAssignee, nested, sig)
	return &Chain{
		value:  value,
		names:  model.CloneAppend(c.names, outerAssignee),
		sigs:   sigs,
		nested: next,
	}, nil
}

// clone deep-copies the chain WITHOUT the nested-encoding cache, so
// mutations of the copy's bytes (adversarial tests forge interior
// signatures this way) are faithfully re-encoded on the next use.
func (c *Chain) clone() *Chain {
	out := &Chain{
		value: append([]byte(nil), c.value...),
		names: model.CloneAppend(c.names),
		sigs:  make([][]byte, len(c.sigs)),
	}
	for i, s := range c.sigs {
		out.sigs[i] = append([]byte(nil), s...)
	}
	return out
}

// Value returns the innermost payload m.
func (c *Chain) Value() []byte { return c.value }

// Len returns the number of signature layers.
func (c *Chain) Len() int { return len(c.sigs) }

// Names returns the embedded assignee names, innermost first. Its length
// is Len()-1: the outermost layer's assignee comes from the transport.
func (c *Chain) Names() []model.NodeID {
	return model.CloneAppend(c.names)
}

// Signers returns the full claimed signer sequence given the immediate
// sender: embedded names followed by the sender, innermost first. This is
// the "P_0 said m, P_1 said that P_0 said m, …" reading from the paper.
func (c *Chain) Signers(sender model.NodeID) []model.NodeID {
	return model.CloneAppend(c.names, sender)
}

// The chain wire layouts are defined ONCE each, by the append helpers
// below; every signing, verification, and cache-derivation path goes
// through them. Anything that changes a layout changes it for all
// callers at once — signing and verification cannot drift apart.

// appendValuePayload appends the byte string the originator signs.
func appendValuePayload(dst, value []byte) []byte {
	dst = AppendString(dst, tagChainValue)
	return AppendBytes(dst, value)
}

// appendLinkPayload appends the byte string a chain extender signs: the
// assignee name of the enclosed message plus the enclosed message's
// nested encoding.
func appendLinkPayload(dst []byte, assignee model.NodeID, nested []byte) []byte {
	dst = AppendString(dst, tagChainLink)
	dst = AppendInt(dst, int(assignee))
	return AppendBytes(dst, nested)
}

// appendNestedRoot appends the innermost nested-encoding layer
// (value, sig_0).
func appendNestedRoot(dst, value, sig0 []byte) []byte {
	dst = AppendBytes(dst, value)
	return AppendBytes(dst, sig0)
}

// appendNestedLayer appends one outer nested-encoding layer
// (assignee, enclosed encoding, signature).
func appendNestedLayer(dst []byte, assignee model.NodeID, enc, sg []byte) []byte {
	dst = AppendInt(dst, int(assignee))
	dst = AppendBytes(dst, enc)
	return AppendBytes(dst, sg)
}

// valuePayload is appendValuePayload into a fresh exactly-sized buffer.
func valuePayload(value []byte) []byte {
	dst := make([]byte, 0, BytesFieldSize(len(tagChainValue))+BytesFieldSize(len(value)))
	return appendValuePayload(dst, value)
}

// linkPayload is appendLinkPayload into a fresh exactly-sized buffer.
func linkPayload(assignee model.NodeID, nested []byte) []byte {
	dst := make([]byte, 0, BytesFieldSize(len(tagChainLink))+IntFieldSize+BytesFieldSize(len(nested)))
	return appendLinkPayload(dst, assignee, nested)
}

// nestedEncoding returns the chain's nested encoding — the byte string
// that the NEXT signer would sign (together with an assignee name) —
// computing and caching it for chains that came off the wire. Layer k's
// nested encoding is (name_{k-1}, enc_{k-1}, sig_k) and the innermost is
// (value, sig_0).
func (c *Chain) nestedEncoding() []byte {
	if c.nested == nil {
		c.nested = c.computeNested()
	}
	return c.nested
}

// computeNested rebuilds the nested encoding bottom-up. Only chains
// parsed from the wire and extended without an intervening Verify pay
// this cost; everything else rides the cache.
func (c *Chain) computeNested() []byte {
	enc := appendNestedRoot(nil, c.value, c.sigs[0])
	for k := 1; k < len(c.sigs); k++ {
		next := make([]byte, 0, IntFieldSize+BytesFieldSize(len(enc))+BytesFieldSize(len(c.sigs[k])))
		enc = appendNestedLayer(next, c.names[k-1], enc, c.sigs[k])
	}
	return enc
}

// Marshal produces the flat wire encoding of the chain in a single
// exactly-sized allocation.
func (c *Chain) Marshal() []byte {
	return c.MarshalTo(make([]byte, 0, c.MarshalSize()))
}

// MarshalTo appends the flat wire encoding to dst and returns the
// extended slice, for callers embedding a chain in a larger payload
// without an intermediate copy.
func (c *Chain) MarshalTo(dst []byte) []byte {
	dst = AppendBytes(dst, c.value)
	dst = AppendInt(dst, len(c.sigs))
	for _, n := range c.names {
		dst = AppendInt(dst, int(n))
	}
	for _, s := range c.sigs {
		dst = AppendBytes(dst, s)
	}
	return dst
}

// MarshalSize returns the exact size of the flat wire encoding, so
// callers of MarshalTo can presize the destination buffer.
func (c *Chain) MarshalSize() int {
	size := BytesFieldSize(len(c.value)) + IntFieldSize + IntFieldSize*len(c.names)
	for _, s := range c.sigs {
		size += BytesFieldSize(len(s))
	}
	return size
}

// UnmarshalChain parses a flat wire encoding. It validates structure only;
// signature checking is Verify's job.
func UnmarshalChain(data []byte) (*Chain, error) {
	d := NewDecoder(data)
	value := d.Bytes()
	nsigs := d.Int()
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrChainEncoding, d.Err())
	}
	// A chain never exceeds one signature per node plus slack; reject
	// absurd counts before allocating.
	if nsigs < 1 || nsigs > 1<<16 {
		return nil, fmt.Errorf("%w: implausible signature count %d", ErrChainEncoding, nsigs)
	}
	c := &Chain{
		value: append([]byte(nil), value...),
		names: make([]model.NodeID, 0, nsigs-1),
		sigs:  make([][]byte, 0, nsigs),
	}
	for k := 0; k < nsigs-1; k++ {
		c.names = append(c.names, model.NodeID(d.Int()))
	}
	for k := 0; k < nsigs; k++ {
		c.sigs = append(c.sigs, append([]byte(nil), d.Bytes()...))
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChainEncoding, err)
	}
	return c, nil
}

// chainScratch recycles the per-Verify working set: resolved predicates,
// the payload arena (all layer payloads packed end to end, addressed by
// offsets so arena growth cannot invalidate them), the evolving nested
// encoding, the assembled checks, and the VerifyBatch scratch.
type chainScratch struct {
	preds  []TestPredicate
	offs   []int
	arena  []byte
	ne     []byte
	checks []Check
	batch  batchScratch
}

var chainScratchPool = sync.Pool{New: func() any { return new(chainScratch) }}

// Verify checks every signature layer of the chain against the verifier's
// directory, attributing the outermost layer to sender (per N2) and each
// inner layer to its embedded name. On success it returns the full signer
// sequence, innermost first.
//
// A correct node that accepts a chain via Verify has, in the paper's
// terms, assigned the complete message to the sender and every sub-message
// to its stated node; Theorem 4 then guarantees all correct nodes make the
// same assignments or some correct node discovers a failure.
//
// The per-layer payloads are built in a single forward pass into a pooled
// arena and the layer checks handed to VerifyBatch, which dedups against
// the verified-signature memo and fans residual public-key work across
// the verification worker pool — so re-verifying a chain the process has
// already seen costs hashing, and cold multi-layer chains verify on all
// cores. The result (including which error, at which layer) is identical
// to checking the layers one by one in order; verifySerial below is that
// reference implementation, kept as the differential oracle. On success
// the chain's nested-encoding cache is filled, making a subsequent Extend
// allocation-minimal.
func (c *Chain) Verify(sender model.NodeID, dir Directory) ([]model.NodeID, error) {
	if len(c.sigs) == 0 {
		return nil, ErrChainEmpty
	}
	if len(c.names) != len(c.sigs)-1 {
		return nil, fmt.Errorf("%w: %d names for %d signatures",
			ErrChainEncoding, len(c.names), len(c.sigs))
	}
	signers := c.Signers(sender)
	// Resolve predicates up front. A serial verifier tests layers in order
	// and stops at the first layer with no accepted predicate, so only
	// layers below that bound ("limit") are ever tested.
	s := chainScratchPool.Get().(*chainScratch)
	defer chainScratchPool.Put(s)
	preds := s.preds[:0]
	limit := len(c.sigs)
	for k := 0; k < len(c.sigs); k++ {
		pred, ok := dir.PredicateOf(signers[k])
		if !ok {
			limit = k
			break
		}
		preds = append(preds, pred)
	}
	s.preds = preds
	if limit == 0 {
		return nil, fmt.Errorf("%w: layer %d assigned to %v", ErrChainUnknownSigner, 0, signers[0])
	}
	// Forward pass: pack payload_0..payload_{limit-1} into the arena
	// (recording offsets — the arena may reallocate as it grows) while ne
	// evolves through the nested encodings. payload_{k+1} is the link tag
	// plus (name_k, nested_k), and nested_{k+1} is that same (name_k,
	// nested_k) body plus sig_{k+1} — so each step encodes the body once
	// in the arena and copies it into ne instead of re-encoding.
	const tagLen = 4 + len(tagChainLink)
	arena := appendValuePayload(s.arena[:0], c.value)
	offs := append(s.offs[:0], 0, len(arena))
	ne := appendNestedRoot(s.ne[:0], c.value, c.sigs[0])
	for k := 0; k+1 < limit; k++ {
		start := len(arena)
		arena = appendLinkPayload(arena, c.names[k], ne)
		offs = append(offs, len(arena))
		body := arena[start+tagLen:]
		ne = append(ne[:0], body...)
		ne = AppendBytes(ne, c.sigs[k+1])
	}
	s.arena, s.ne, s.offs = arena, ne, offs
	checks := s.checks[:0]
	for k := 0; k < limit; k++ {
		checks = append(checks, Check{Pred: preds[k], Payload: arena[offs[k]:offs[k+1]], Sig: c.sigs[k]})
	}
	s.checks = checks
	bad := verifyBatch(checks, &s.batch)
	if bad >= 0 {
		return nil, fmt.Errorf("%w: layer %d assigned to %v", ErrChainBadSignature, bad, signers[bad])
	}
	if limit < len(c.sigs) {
		return nil, fmt.Errorf("%w: layer %d assigned to %v", ErrChainUnknownSigner, limit, signers[limit])
	}
	if c.nested == nil {
		// The forward pass ended on the full chain's nested encoding;
		// keep it so a following Extend skips computeNested.
		c.nested = append([]byte(nil), ne...)
	}
	return signers, nil
}

// verifySerial is the pre-batch reference implementation of Verify: one
// memoized test per layer, in order, stopping at the first failure. It is
// kept verbatim as the differential oracle — Verify must return the same
// signers and the same error (same sentinel, same layer) for every input.
func (c *Chain) verifySerial(sender model.NodeID, dir Directory) ([]model.NodeID, error) {
	if len(c.sigs) == 0 {
		return nil, ErrChainEmpty
	}
	if len(c.names) != len(c.sigs)-1 {
		return nil, fmt.Errorf("%w: %d names for %d signatures",
			ErrChainEncoding, len(c.names), len(c.sigs))
	}
	signers := c.Signers(sender)
	const tagLen = 4 + len(tagChainLink)
	pe, ne := GetEncoder(), GetEncoder()
	defer pe.Release()
	defer ne.Release()
	pe.Grow(BytesFieldSize(len(tagChainValue)) + BytesFieldSize(len(c.value)))
	pe.Raw(appendValuePayload(pe.Encoding(), c.value))
	ne.Grow(BytesFieldSize(len(c.value)) + BytesFieldSize(len(c.sigs[0])))
	ne.Raw(appendNestedRoot(ne.Encoding(), c.value, c.sigs[0]))
	for k := 0; k < len(c.sigs); k++ {
		who := signers[k]
		pred, ok := dir.PredicateOf(who)
		if !ok {
			return nil, fmt.Errorf("%w: layer %d assigned to %v", ErrChainUnknownSigner, k, who)
		}
		if !chainVerifyMemo.test(pred, pe.Encoding(), c.sigs[k]) {
			return nil, fmt.Errorf("%w: layer %d assigned to %v", ErrChainBadSignature, k, who)
		}
		if k+1 < len(c.sigs) {
			pe.Reset()
			pe.Grow(tagLen + IntFieldSize + BytesFieldSize(ne.Len()))
			pe.Raw(appendLinkPayload(pe.Encoding(), c.names[k], ne.Encoding()))
			// nested_{k+1} is appendNestedLayer(name_k, nested_k, sig_{k+1});
			// its (name, nested) body is payload_{k+1} minus the tag field,
			// so splice it from pe instead of re-encoding.
			body := pe.Encoding()[tagLen:]
			ne.Reset()
			ne.Grow(len(body) + BytesFieldSize(len(c.sigs[k+1])))
			ne.Raw(body).Bytes(c.sigs[k+1])
		}
	}
	if c.nested == nil {
		c.nested = ne.AppendTo(nil)
	}
	return signers, nil
}

// OuterVerify checks only the outermost signature layer against pred,
// ignoring every sub-message. It exists solely for the E6 ablation, which
// demonstrates that skipping sub-message verification (contrary to Fig. 2)
// lets interior tampering through. Sound code uses Verify.
func (c *Chain) OuterVerify(pred TestPredicate) bool {
	k := len(c.sigs) - 1
	if k < 0 {
		return false
	}
	var payload []byte
	if k == 0 {
		payload = valuePayload(c.value)
	} else {
		// Reconstruct the nested encoding of everything under the
		// outermost layer.
		inner := &Chain{value: c.value, names: c.names[:k-1], sigs: c.sigs[:k]}
		payload = linkPayload(c.names[k-1], inner.nestedEncoding())
	}
	return pred.Test(payload, c.sigs[k])
}

// MapDirectory is a Directory backed by a plain map, convenient for tests
// and for global-authentication setups where all nodes share one view.
type MapDirectory map[model.NodeID]TestPredicate

var _ Directory = MapDirectory(nil)

// PredicateOf implements Directory.
func (m MapDirectory) PredicateOf(node model.NodeID) (TestPredicate, bool) {
	p, ok := m[node]
	return p, ok
}
