package sig

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// SchemeHMAC is the name of the HMAC-SHA256 pseudo-signature scheme.
//
// CAVEAT: HMAC is symmetric, so the "test predicate" necessarily contains
// the signing key — property S3 does NOT hold: anyone holding the predicate
// can forge signatures. The scheme exists solely to isolate protocol
// overhead from public-key cryptography cost in benchmarks (experiment
// E10). It must never be used where the adversary model matters; the
// adversary tests use real schemes.
const SchemeHMAC = "hmac-sha256"

// hmacKeySize is the symmetric key length in bytes.
const hmacKeySize = 32

func init() { Register(hmacScheme{}) }

type hmacScheme struct{}

func (hmacScheme) Name() string { return SchemeHMAC }

func (hmacScheme) Generate(rnd io.Reader) (Signer, error) {
	key := make([]byte, hmacKeySize)
	if _, err := io.ReadFull(rnd, key); err != nil {
		return nil, fmt.Errorf("sig/hmac: generate: %w", err)
	}
	pred := &hmacPredicate{key: key}
	return &hmacSigner{pred: pred}, nil
}

func (hmacScheme) ParsePredicate(data []byte) (TestPredicate, error) {
	if len(data) != hmacKeySize {
		return nil, fmt.Errorf("%w: hmac key must be %d bytes, got %d",
			ErrBadKey, hmacKeySize, len(data))
	}
	key := make([]byte, hmacKeySize)
	copy(key, data)
	return &hmacPredicate{key: key}, nil
}

type hmacSigner struct {
	pred *hmacPredicate
}

var _ Signer = (*hmacSigner)(nil)

func (s *hmacSigner) Sign(msg []byte) ([]byte, error) {
	return s.pred.mac(msg), nil
}

func (s *hmacSigner) Predicate() TestPredicate { return s.pred }

type hmacPredicate struct {
	key []byte
}

var _ TestPredicate = (*hmacPredicate)(nil)

func (p *hmacPredicate) mac(msg []byte) []byte {
	h := hmac.New(sha256.New, p.key)
	h.Write(msg)
	return h.Sum(nil)
}

func (p *hmacPredicate) Test(msg, sig []byte) bool {
	return hmac.Equal(p.mac(msg), sig)
}

func (p *hmacPredicate) Bytes() []byte {
	out := make([]byte, len(p.key))
	copy(out, p.key)
	return out
}

func (p *hmacPredicate) Fingerprint() string {
	sum := sha256.Sum256(p.key)
	return SchemeHMAC + ":" + hex.EncodeToString(sum[:8])
}
