package sig

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// SchemeToy is the name of a deliberately simple deterministic scheme used
// by unit tests that need fast, reproducible keys and signatures.
//
// A toy signature of m under key k is SHA-256(k || m) and the "predicate"
// is SHA-256-derived from the key, with verification done by re-deriving.
// Like HMAC the key is recoverable from... it is NOT: the predicate stores
// only a key commitment, so verification requires the signature to carry
// the key alongside the MAC. That makes signatures trivially forgeable by
// anyone who has SEEN one (the key rides in every signature), which is a
// deliberate, documented violation of S3 used by adversarial tests that
// model signature-capability theft. Production code must use Ed25519.
const SchemeToy = "toy"

const toyKeySize = 16

func init() { Register(toyScheme{}) }

type toyScheme struct{}

func (toyScheme) Name() string { return SchemeToy }

func (toyScheme) Generate(rnd io.Reader) (Signer, error) {
	key := make([]byte, toyKeySize)
	if _, err := io.ReadFull(rnd, key); err != nil {
		return nil, fmt.Errorf("sig/toy: generate: %w", err)
	}
	commit := sha256.Sum256(key)
	pred := &toyPredicate{commit: commit[:]}
	return &toySigner{key: key, pred: pred}, nil
}

func (toyScheme) ParsePredicate(data []byte) (TestPredicate, error) {
	if len(data) != sha256.Size {
		return nil, fmt.Errorf("%w: toy commitment must be %d bytes, got %d",
			ErrBadKey, sha256.Size, len(data))
	}
	commit := make([]byte, sha256.Size)
	copy(commit, data)
	return &toyPredicate{commit: commit}, nil
}

type toySigner struct {
	key  []byte
	pred *toyPredicate
}

var _ Signer = (*toySigner)(nil)

func (s *toySigner) Sign(msg []byte) ([]byte, error) {
	mac := toyMAC(s.key, msg)
	// Signature = key || MAC. Carrying the key makes verification possible
	// against a commitment-only predicate, at the (intentional) cost of S3.
	out := make([]byte, 0, len(s.key)+len(mac))
	out = append(out, s.key...)
	out = append(out, mac...)
	return out, nil
}

func (s *toySigner) Predicate() TestPredicate { return s.pred }

// ExtractToyKey recovers the signing key from a toy signature. Adversarial
// tests use this to model an attacker that steals signing capability after
// observing traffic — the scenario S3 exists to preclude.
func ExtractToyKey(sig []byte) ([]byte, bool) {
	if len(sig) != toyKeySize+sha256.Size {
		return nil, false
	}
	key := make([]byte, toyKeySize)
	copy(key, sig[:toyKeySize])
	return key, true
}

// NewToySignerFromKey builds a toy signer around a raw key, for tests that
// exercise key theft and key sharing between faulty nodes.
func NewToySignerFromKey(key []byte) (Signer, error) {
	if len(key) != toyKeySize {
		return nil, fmt.Errorf("sig/toy: key must be %d bytes, got %d", toyKeySize, len(key))
	}
	k := make([]byte, toyKeySize)
	copy(k, key)
	commit := sha256.Sum256(k)
	return &toySigner{key: k, pred: &toyPredicate{commit: commit[:]}}, nil
}

func toyMAC(key, msg []byte) []byte {
	h := sha256.New()
	h.Write(key)
	h.Write(msg)
	return h.Sum(nil)
}

type toyPredicate struct {
	commit []byte
}

var _ TestPredicate = (*toyPredicate)(nil)

func (p *toyPredicate) Test(msg, sig []byte) bool {
	if len(sig) != toyKeySize+sha256.Size {
		return false
	}
	key := sig[:toyKeySize]
	mac := sig[toyKeySize:]
	commit := sha256.Sum256(key)
	if !bytes.Equal(commit[:], p.commit) {
		return false
	}
	return bytes.Equal(toyMAC(key, msg), mac)
}

func (p *toyPredicate) Bytes() []byte {
	out := make([]byte, len(p.commit))
	copy(out, p.commit)
	return out
}

func (p *toyPredicate) Fingerprint() string {
	return SchemeToy + ":" + hex.EncodeToString(p.commit[:8])
}
