package sig

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// chainFixture builds n signers with a shared directory.
type chainFixture struct {
	signers []Signer
	dir     MapDirectory
}

func newChainFixture(t *testing.T, n int) *chainFixture {
	t.Helper()
	scheme, err := ByName(SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	f := &chainFixture{dir: make(MapDirectory, n)}
	for i := 0; i < n; i++ {
		s, err := scheme.Generate(rand.Reader)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		f.signers = append(f.signers, s)
		f.dir[model.NodeID(i)] = s.Predicate()
	}
	return f
}

// buildChain signs value by node 0 and extends through nodes 1..k-1, each
// naming its predecessor, as the FD protocol does.
func (f *chainFixture) buildChain(t *testing.T, value []byte, k int) *Chain {
	t.Helper()
	c, err := NewChain(value, f.signers[0])
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	for i := 1; i < k; i++ {
		c, err = c.Extend(model.NodeID(i-1), f.signers[i])
		if err != nil {
			t.Fatalf("Extend %d: %v", i, err)
		}
	}
	return c
}

func TestChainVerifyHappyPath(t *testing.T) {
	f := newChainFixture(t, 5)
	value := []byte("agreement value")
	for k := 1; k <= 5; k++ {
		c := f.buildChain(t, value, k)
		if c.Len() != k {
			t.Fatalf("Len = %d, want %d", c.Len(), k)
		}
		sender := model.NodeID(k - 1)
		signers, err := c.Verify(sender, f.dir)
		if err != nil {
			t.Fatalf("Verify k=%d: %v", k, err)
		}
		for i, s := range signers {
			if s != model.NodeID(i) {
				t.Errorf("k=%d signer[%d] = %v, want %v", k, i, s, model.NodeID(i))
			}
		}
		if !bytes.Equal(c.Value(), value) {
			t.Errorf("Value = %q, want %q", c.Value(), value)
		}
	}
}

func TestChainMarshalRoundTrip(t *testing.T) {
	f := newChainFixture(t, 4)
	c := f.buildChain(t, []byte("wire"), 4)
	parsed, err := UnmarshalChain(c.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalChain: %v", err)
	}
	if _, err := parsed.Verify(3, f.dir); err != nil {
		t.Fatalf("Verify after round trip: %v", err)
	}
	if !bytes.Equal(parsed.Value(), []byte("wire")) {
		t.Errorf("Value = %q, want %q", parsed.Value(), "wire")
	}
	if got, want := parsed.Names(), c.Names(); len(got) != len(want) {
		t.Errorf("Names length = %d, want %d", len(got), len(want))
	}
}

func TestChainVerifyWrongSender(t *testing.T) {
	f := newChainFixture(t, 4)
	c := f.buildChain(t, []byte("v"), 3)
	// The outer signature is node 2's; attributing it to node 3 (as N2
	// would if node 3 relayed the bytes unmodified) must fail.
	if _, err := c.Verify(3, f.dir); err == nil {
		t.Error("chain verified with wrong outer assignee")
	}
}

func TestChainVerifyTamperedValue(t *testing.T) {
	f := newChainFixture(t, 4)
	c := f.buildChain(t, []byte("honest"), 3)
	wire := c.Marshal()
	// Flip a byte inside the value region.
	idx := bytes.Index(wire, []byte("honest"))
	if idx < 0 {
		t.Fatal("value not found in wire image")
	}
	wire[idx] ^= 0x01
	parsed, err := UnmarshalChain(wire)
	if err != nil {
		t.Fatalf("UnmarshalChain: %v", err)
	}
	if _, err := parsed.Verify(2, f.dir); !errors.Is(err, ErrChainBadSignature) {
		t.Errorf("tampered value: err = %v, want ErrChainBadSignature", err)
	}
}

func TestChainVerifyTamperedInteriorSignature(t *testing.T) {
	f := newChainFixture(t, 4)
	// An interior forgery: the outermost signer is the attacker, so it
	// signs honestly over a corrupted interior. The outer layer then
	// verifies — only sub-message checking (Fig. 2's mandate) catches the
	// forged P_0 signature. This is the E6 ablation gap in miniature.
	inner, err := NewChain([]byte("v"), f.signers[0])
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	innerCp := inner.clone()
	innerCp.sigs[0][0] ^= 0x01 // forged P_0 signature
	mid, err := innerCp.Extend(0, f.signers[1])
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	outer, err := mid.Extend(1, f.signers[2])
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if !outer.OuterVerify(f.signers[2].Predicate()) {
		t.Error("outer layer should verify (node 2 signed honestly over forged interior)")
	}
	if _, err := outer.Verify(2, f.dir); !errors.Is(err, ErrChainBadSignature) {
		t.Errorf("full verify: err = %v, want ErrChainBadSignature at layer 0", err)
	}
}

func TestChainVerifyUnknownSigner(t *testing.T) {
	f := newChainFixture(t, 4)
	c := f.buildChain(t, []byte("v"), 3)
	// Remove node 1's predicate from the verifier's directory.
	dir := make(MapDirectory)
	for k, v := range f.dir {
		if k != 1 {
			dir[k] = v
		}
	}
	if _, err := c.Verify(2, dir); !errors.Is(err, ErrChainUnknownSigner) {
		t.Errorf("err = %v, want ErrChainUnknownSigner", err)
	}
}

func TestChainWrongEmbeddedName(t *testing.T) {
	f := newChainFixture(t, 4)
	inner, err := NewChain([]byte("v"), f.signers[0])
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	// Node 1 extends but names node 3 instead of node 0: the name is
	// signed, so verification attributes layer 0 to node 3 and fails.
	c, err := inner.Extend(3, f.signers[1])
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	signers, err := c.Verify(1, f.dir)
	if err == nil {
		t.Errorf("wrong-name chain verified; signers=%v", signers)
	}
}

func TestChainExtendDoesNotMutateOriginal(t *testing.T) {
	f := newChainFixture(t, 3)
	c1 := f.buildChain(t, []byte("v"), 1)
	before := c1.Marshal()
	if _, err := c1.Extend(0, f.signers[1]); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if !bytes.Equal(before, c1.Marshal()) {
		t.Error("Extend mutated the receiver chain")
	}
}

func TestUnmarshalChainMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"garbage":      {1, 2, 3, 4, 5},
		"zero sigs":    NewEncoder().Bytes([]byte("v")).Int(0).Encoding(),
		"absurd count": NewEncoder().Bytes([]byte("v")).Int(1 << 20).Encoding(),
	}
	for name, data := range cases {
		if _, err := UnmarshalChain(data); err == nil {
			t.Errorf("%s: UnmarshalChain succeeded", name)
		}
	}
}

func TestUnmarshalChainNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		c, err := UnmarshalChain(data)
		if err == nil && c != nil {
			dir := MapDirectory{}
			c.Verify(0, dir) // must not panic either
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChainSignersSequence(t *testing.T) {
	f := newChainFixture(t, 5)
	c := f.buildChain(t, []byte("v"), 4)
	got := c.Signers(3)
	want := []model.NodeID{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Signers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Signers[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestChainVerifyQuickRandomValues(t *testing.T) {
	f := newChainFixture(t, 3)
	prop := func(value []byte) bool {
		c, err := NewChain(value, f.signers[0])
		if err != nil {
			return false
		}
		c, err = c.Extend(0, f.signers[1])
		if err != nil {
			return false
		}
		signers, err := c.Verify(1, f.dir)
		if err != nil || len(signers) != 2 {
			return false
		}
		return bytes.Equal(c.Value(), value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
