package sig

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// countingPred is a TestPredicate instrumented for the single-flight
// tests: it counts Test invocations, optionally blocks on gate, and
// returns a fixed verdict. The id must differ between instances with
// different verdicts — the memo keys by content digest, so two predicates
// with identical Bytes/Fingerprint are (correctly) treated as one key.
type countingPred struct {
	id      string
	verdict bool
	gate    chan struct{}
	calls   atomic.Int32
}

func (p *countingPred) Test(msg, sg []byte) bool {
	p.calls.Add(1)
	if p.gate != nil {
		<-p.gate
	}
	return p.verdict
}
func (p *countingPred) Bytes() []byte       { return []byte("counting-pred/" + p.id) }
func (p *countingPred) Fingerprint() string { return "counting/" + p.id }

// TestVerifyMemoSingleFlight pins the in-flight suppression: N goroutines
// missing on the same (pred, payload, sig) triple run the underlying Test
// exactly once, for successes and for failures alike, with every waiter
// adopting the leader's verdict. Run under -race this also exercises the
// sharded locking.
func TestVerifyMemoSingleFlight(t *testing.T) {
	payload, sg := []byte("single-flight payload"), []byte("single-flight sig")
	for _, verdict := range []bool{true, false} {
		m := newVerifyMemo()
		pred := &countingPred{id: fmt.Sprintf("sf-%v", verdict), verdict: verdict, gate: make(chan struct{})}
		const goroutines = 8
		results := make([]bool, goroutines)
		started := make(chan struct{}, goroutines)
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for i := 0; i < goroutines; i++ {
			go func(i int) {
				defer wg.Done()
				started <- struct{}{}
				results[i] = m.test(pred, payload, sg)
			}(i)
		}
		for i := 0; i < goroutines; i++ {
			<-started
		}
		// Give every goroutine time to reach the memo (register as leader
		// or block as waiter) before releasing the leader's Test.
		time.Sleep(100 * time.Millisecond)
		close(pred.gate)
		wg.Wait()
		if got := pred.calls.Load(); got != 1 {
			t.Errorf("verdict=%v: Test ran %d times for one concurrent triple, want 1", verdict, got)
		}
		for i, r := range results {
			if r != verdict {
				t.Errorf("verdict=%v: goroutine %d got %v", verdict, i, r)
			}
		}
		// Failures must still not be memoized: a later call re-runs Test.
		if !verdict {
			pred.gate = nil
			if m.test(pred, payload, sg) {
				t.Error("failed verdict was memoized")
			}
			if got := pred.calls.Load(); got != 2 {
				t.Errorf("post-failure re-test: Test ran %d times total, want 2", got)
			}
		}
	}
}

// TestVerifyMemoShardedContention hammers the memo from many goroutines
// over many distinct keys; under -race this pins the shard locking, and
// the final assertions check hits land regardless of shard.
func TestVerifyMemoShardedContention(t *testing.T) {
	m := newVerifyMemo()
	pred := &countingPred{id: "contention", verdict: true}
	const keys = 256
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				payload := []byte(fmt.Sprintf("payload-%d", i))
				if !m.test(pred, payload, []byte("sig")) {
					t.Errorf("goroutine %d key %d: test failed", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < keys; i++ {
		payload := []byte(fmt.Sprintf("payload-%d", i))
		if !m.hit(m.keyOf(pred, payload, []byte("sig"))) {
			t.Errorf("key %d not memoized after concurrent fill", i)
		}
	}
}

// chainVerifyOutcome captures everything observable from one Verify call
// for the differential comparison.
type chainVerifyOutcome struct {
	signers []model.NodeID
	errText string
	unknown bool
	badSig  bool
}

func verifyOutcome(signers []model.NodeID, err error) chainVerifyOutcome {
	o := chainVerifyOutcome{signers: signers}
	if err != nil {
		o.errText = err.Error()
		o.unknown = errors.Is(err, ErrChainUnknownSigner)
		o.badSig = errors.Is(err, ErrChainBadSignature)
	}
	return o
}

func (o chainVerifyOutcome) equal(p chainVerifyOutcome) bool {
	if len(o.signers) != len(p.signers) {
		return false
	}
	for i := range o.signers {
		if o.signers[i] != p.signers[i] {
			return false
		}
	}
	return o.errText == p.errText && o.unknown == p.unknown && o.badSig == p.badSig
}

// TestChainVerifyBatchMatchesSerial is the batch-verification differential
// oracle: for well-formed and adversarial chains alike, the batched Verify
// must return the same signers and the SAME error (sentinel and layer) as
// the serial reference implementation, at every parallelism setting and
// GOMAXPROCS — signature verification order must be unobservable.
func TestChainVerifyBatchMatchesSerial(t *testing.T) {
	const hops = 6
	f := newChainFixture(t, hops)
	sender := model.NodeID(hops - 1)

	type scenario struct {
		name  string
		chain *Chain
		dir   Directory
	}
	tamper := func(layer int) *Chain {
		c := f.buildChain(t, []byte("differential"), hops).clone()
		c.sigs[layer][0] ^= 0x01
		return c
	}
	without := func(nodes ...model.NodeID) Directory {
		dir := make(MapDirectory)
		for n, p := range f.dir {
			dir[n] = p
		}
		for _, n := range nodes {
			delete(dir, n)
		}
		return dir
	}
	scenarios := []scenario{
		{"all-good", f.buildChain(t, []byte("differential"), hops), f.dir},
		{"bad-sig-layer0", tamper(0), f.dir},
		{"bad-sig-layer3", tamper(3), f.dir},
		{"bad-sig-outermost", tamper(hops - 1), f.dir},
		{"unknown-layer0", f.buildChain(t, []byte("differential"), hops), without(0)},
		{"unknown-layer2", f.buildChain(t, []byte("differential"), hops), without(2)},
		// Bad signature BELOW the unknown layer: serial reports the bad
		// signature first. Unknown BELOW the bad signature: serial never
		// reaches the bad layer.
		{"bad1-then-unknown4", func() *Chain { c := tamper(1); return c }(), without(4)},
		{"unknown1-then-bad4", func() *Chain { c := tamper(4); return c }(), without(1)},
	}

	oldMaxProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(oldMaxProcs)
	defer SetVerifyParallelism(0)
	for _, procs := range []int{1, oldMaxProcs} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 8} {
			SetVerifyParallelism(workers)
			for _, sc := range scenarios {
				// Serial reference, cold.
				ResetVerifyMemo()
				want := verifyOutcome(sc.chain.verifySerial(sender, sc.dir))
				// Batched, cold (exercises the fan-out) then warm
				// (exercises the memo pre-pass).
				ResetVerifyMemo()
				gotCold := verifyOutcome(sc.chain.Verify(sender, sc.dir))
				gotWarm := verifyOutcome(sc.chain.Verify(sender, sc.dir))
				if !gotCold.equal(want) {
					t.Errorf("procs=%d workers=%d %s: cold batch %+v != serial %+v",
						procs, workers, sc.name, gotCold, want)
				}
				if !gotWarm.equal(want) {
					t.Errorf("procs=%d workers=%d %s: warm batch %+v != serial %+v",
						procs, workers, sc.name, gotWarm, want)
				}
			}
		}
	}
}

// TestChainVerifyFillsNestedCache checks the batched Verify still fills
// the nested-encoding cache identically to the slow oracle (the serial
// path's side effect Extend depends on).
func TestChainVerifyFillsNestedCache(t *testing.T) {
	f := newChainFixture(t, 5)
	c := f.buildChain(t, []byte("cache fill"), 5)
	parsed, err := UnmarshalChain(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parsed.Verify(4, f.dir); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !bytes.Equal(parsed.nested, slowEncodeNested(parsed)) {
		t.Error("batched Verify filled a nested cache that diverges from the slow oracle")
	}
}

// TestVerifyBatchFirstFailure pins VerifyBatch's deterministic result:
// the index of the first failing check, independent of worker count.
func TestVerifyBatchFirstFailure(t *testing.T) {
	defer SetVerifyParallelism(0)
	good := &countingPred{id: "good", verdict: true}
	bad := &countingPred{id: "bad", verdict: false}
	mk := func(preds ...*countingPred) []Check {
		checks := make([]Check, len(preds))
		for i, p := range preds {
			checks[i] = Check{Pred: p, Payload: []byte(fmt.Sprintf("p%d", i)), Sig: []byte("s")}
		}
		return checks
	}
	cases := []struct {
		checks []Check
		want   int
	}{
		{nil, -1},
		{mk(good), -1},
		{mk(bad), 0},
		{mk(good, good, good, good), -1},
		{mk(good, bad, good, bad), 1},
		{mk(bad, good, bad, good), 0},
		{mk(good, good, good, bad), 3},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		SetVerifyParallelism(workers)
		for ci, tc := range cases {
			for rep := 0; rep < 3; rep++ {
				if got := VerifyBatch(tc.checks); got != tc.want {
					t.Errorf("workers=%d case=%d rep=%d: VerifyBatch=%d, want %d", workers, ci, rep, got, tc.want)
				}
			}
		}
	}
}

// TestVerifyChainsMatchesLoop checks the round-level helper returns
// exactly what a per-chain Verify loop would, including nil skips.
func TestVerifyChainsMatchesLoop(t *testing.T) {
	const hops = 4
	f := newChainFixture(t, hops)
	goodChain := f.buildChain(t, []byte("round"), hops)
	badChain := f.buildChain(t, []byte("round"), hops).clone()
	badChain.sigs[2][0] ^= 0x01
	otherChain := f.buildChain(t, []byte("other round"), hops)
	chains := []*Chain{goodChain, nil, badChain, otherChain}
	senders := []model.NodeID{hops - 1, 0, hops - 1, hops - 1}

	errs := VerifyChains(chains, senders, f.dir)
	if len(errs) != len(chains) {
		t.Fatalf("VerifyChains returned %d errors for %d chains", len(errs), len(chains))
	}
	for i, c := range chains {
		if c == nil {
			if errs[i] != nil {
				t.Errorf("chain %d: nil chain got error %v", i, errs[i])
			}
			continue
		}
		_, want := c.Verify(senders[i], f.dir)
		switch {
		case want == nil && errs[i] == nil:
		case want != nil && errs[i] != nil && want.Error() == errs[i].Error():
		default:
			t.Errorf("chain %d: VerifyChains err %v, loop err %v", i, errs[i], want)
		}
	}
}

// TestVerifyBatchWarmAllocs pins the allocation budget of the fully
// memoized batch path: the dedup pre-pass must resolve everything without
// spawning workers or allocating.
func TestVerifyBatchWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	f := newChainFixture(t, 8)
	c := f.buildChain(t, []byte("warm batch"), 8)
	if _, err := c.Verify(7, f.dir); err != nil {
		t.Fatal(err)
	}
	var checks []Check
	for k := 0; k < 8; k++ {
		checks = append(checks, Check{Pred: f.dir[model.NodeID(k)], Payload: []byte("warm"), Sig: []byte("warm-sig")})
	}
	// Memoize the synthetic triples once (they fail crypto but that is
	// irrelevant: we pin the hit path, so use real verified triples).
	scratch := chainScratchPool.Get().(*chainScratch)
	chainScratchPool.Put(scratch)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Verify(7, f.dir); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state is 1 alloc (the returned signers slice) plus pool/GC
	// jitter headroom.
	if allocs > 4 {
		t.Errorf("warm batched Verify allocates %.1f times per op, want <= 4", allocs)
	}
}
