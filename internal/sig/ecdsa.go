package sig

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"fmt"
	"io"
)

// SchemeECDSA is the name of the ECDSA P-256 scheme. ECDSA is the direct
// successor of DSA, which the paper cites as an example scheme satisfying
// S1–S3; classic DSA is no longer exposed for signing by the Go stdlib.
const SchemeECDSA = "ecdsa-p256"

func init() { Register(ecdsaScheme{}) }

type ecdsaScheme struct{}

func (ecdsaScheme) Name() string { return SchemeECDSA }

func (ecdsaScheme) Generate(rnd io.Reader) (Signer, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rnd)
	if err != nil {
		return nil, fmt.Errorf("sig/ecdsa: generate: %w", err)
	}
	return &ecdsaSigner{priv: priv, pred: &ecdsaPredicate{pub: &priv.PublicKey}}, nil
}

func (ecdsaScheme) ParsePredicate(data []byte) (TestPredicate, error) {
	pub, err := x509.ParsePKIXPublicKey(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	ecPub, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: not an ECDSA key (%T)", ErrBadKey, pub)
	}
	return &ecdsaPredicate{pub: ecPub}, nil
}

type ecdsaSigner struct {
	priv *ecdsa.PrivateKey
	pred *ecdsaPredicate
}

var _ Signer = (*ecdsaSigner)(nil)

func (s *ecdsaSigner) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rand.Reader, s.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sig/ecdsa: sign: %w", err)
	}
	return sig, nil
}

func (s *ecdsaSigner) Predicate() TestPredicate { return s.pred }

type ecdsaPredicate struct {
	pub *ecdsa.PublicKey
}

var _ TestPredicate = (*ecdsaPredicate)(nil)

func (p *ecdsaPredicate) Test(msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(p.pub, digest[:], sig)
}

func (p *ecdsaPredicate) Bytes() []byte {
	// MarshalPKIXPublicKey cannot fail for a well-formed P-256 key.
	out, err := x509.MarshalPKIXPublicKey(p.pub)
	if err != nil {
		panic(fmt.Sprintf("sig/ecdsa: marshal public key: %v", err))
	}
	return out
}

func (p *ecdsaPredicate) Fingerprint() string {
	sum := sha256.Sum256(p.Bytes())
	return SchemeECDSA + ":" + hex.EncodeToString(sum[:8])
}
