package sig

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"fmt"
	"io"
)

// SchemeRSA is the name of the RSA-2048 PKCS#1 v1.5 scheme, retained for
// fidelity to the paper's RSA citation [6]. Key generation is slow; prefer
// Ed25519 outside of the E10 scheme-comparison experiment.
const SchemeRSA = "rsa-2048"

// rsaBits is the modulus size. 2048 is the smallest size considered secure
// today; the 1995 paper predates any such guidance.
const rsaBits = 2048

func init() { Register(rsaScheme{}) }

type rsaScheme struct{}

func (rsaScheme) Name() string { return SchemeRSA }

func (rsaScheme) Generate(rnd io.Reader) (Signer, error) {
	priv, err := rsa.GenerateKey(rnd, rsaBits)
	if err != nil {
		return nil, fmt.Errorf("sig/rsa: generate: %w", err)
	}
	return &rsaSigner{priv: priv, pred: &rsaPredicate{pub: &priv.PublicKey}}, nil
}

func (rsaScheme) ParsePredicate(data []byte) (TestPredicate, error) {
	pub, err := x509.ParsePKIXPublicKey(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: not an RSA key (%T)", ErrBadKey, pub)
	}
	return &rsaPredicate{pub: rsaPub}, nil
}

type rsaSigner struct {
	priv *rsa.PrivateKey
	pred *rsaPredicate
}

var _ Signer = (*rsaSigner)(nil)

func (s *rsaSigner) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, s.priv, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sig/rsa: sign: %w", err)
	}
	return sig, nil
}

func (s *rsaSigner) Predicate() TestPredicate { return s.pred }

type rsaPredicate struct {
	pub *rsa.PublicKey
}

var _ TestPredicate = (*rsaPredicate)(nil)

func (p *rsaPredicate) Test(msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	return rsa.VerifyPKCS1v15(p.pub, crypto.SHA256, digest[:], sig) == nil
}

func (p *rsaPredicate) Bytes() []byte {
	out, err := x509.MarshalPKIXPublicKey(p.pub)
	if err != nil {
		panic(fmt.Sprintf("sig/rsa: marshal public key: %v", err))
	}
	return out
}

func (p *rsaPredicate) Fingerprint() string {
	sum := sha256.Sum256(p.Bytes())
	return SchemeRSA + ":" + hex.EncodeToString(sum[:8])
}
