package sig

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// Batch signature verification.
//
// A node rarely checks one signature at a time: verifying a K-layer chain
// checks K triples, and an ingest round checks every flooded chain at
// once. VerifyBatch takes the whole set, dedups it against the
// verified-signature memo first (the common steady state is every triple
// memoized — no public-key work at all), and fans the residual checks
// across a bounded worker pool. Per-key single-flight in the memo keeps
// concurrent workers from duplicating a test that appears twice in (or
// across) batches.
//
// Determinism: the verdict of each check is a pure function of its
// (predicate, payload, signature) triple, so the reported first-failure
// index is independent of worker count and scheduling — a requirement for
// byte-identical reports at any parallelism. Workers may evaluate checks
// AFTER the first failing one that a serial verifier would have skipped;
// the only effect is extra memo fills, which are unobservable.

// Check is one pending signature verification: Pred must accept Sig over
// Payload.
type Check struct {
	Pred    TestPredicate
	Payload []byte
	Sig     []byte
}

// verifyWorkers holds the configured verification parallelism; 0 means
// "use GOMAXPROCS".
var verifyWorkers atomic.Int32

// SetVerifyParallelism bounds the worker pool VerifyBatch fans residual
// (non-memoized) checks across. n <= 0 restores the default, GOMAXPROCS.
// n == 1 makes batch verification fully serial. Reports are byte-identical
// at any setting; the knob trades wall-clock for cores.
func SetVerifyParallelism(n int) {
	if n < 0 {
		n = 0
	}
	verifyWorkers.Store(int32(n))
}

// VerifyParallelism returns the effective worker bound.
func VerifyParallelism() int {
	if n := int(verifyWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// batchScratch recycles the per-batch bookkeeping slices so the warm path
// (everything memoized) allocates nothing.
type batchScratch struct {
	keys []memoKey
	miss []int
	res  []bool
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// VerifyBatch checks every triple and returns the index of the first
// failing check, or -1 if all pass. Checks already in the verified memo
// are skipped; the rest run on up to VerifyParallelism() goroutines
// (including the caller's). The first-failure index is deterministic —
// identical to running the checks one by one in order.
func VerifyBatch(checks []Check) int {
	s := batchScratchPool.Get().(*batchScratch)
	bad := verifyBatch(checks, s)
	batchScratchPool.Put(s)
	return bad
}

func verifyBatch(checks []Check, s *batchScratch) int {
	memo := chainVerifyMemo
	if len(checks) == 1 {
		// One check: the pool machinery is pure overhead.
		c := &checks[0]
		if memo.test(c.Pred, c.Payload, c.Sig) {
			return -1
		}
		return 0
	}
	if cap(s.keys) < len(checks) {
		s.keys = make([]memoKey, len(checks))
		s.miss = make([]int, 0, len(checks))
		s.res = make([]bool, len(checks))
	}
	keys := s.keys[:len(checks)]
	miss := s.miss[:0]
	// Dedup pre-pass: hash every triple, split memo hits from residuals.
	for i := range checks {
		c := &checks[i]
		keys[i] = memo.keyOf(c.Pred, c.Payload, c.Sig)
		if !memo.hit(keys[i]) {
			miss = append(miss, i)
		}
	}
	if len(miss) == 0 {
		return -1
	}
	workers := VerifyParallelism()
	if workers > len(miss) {
		workers = len(miss)
	}
	if workers <= 1 {
		for _, idx := range miss {
			c := &checks[idx]
			if !memo.testKey(keys[idx], c.Pred, c.Payload, c.Sig) {
				return idx
			}
		}
		return -1
	}
	res := s.res[:len(checks)]
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(miss) {
				return
			}
			idx := miss[i]
			c := &checks[idx]
			res[idx] = memo.testKey(keys[idx], c.Pred, c.Payload, c.Sig)
		}
	}
	wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, idx := range miss {
		if !res[idx] {
			return idx
		}
	}
	return -1
}

// VerifyChains batch-verifies a round's worth of chains: errs[i] is
// exactly chains[i].Verify(senders[i], dir). Distinct chains verify
// concurrently on up to VerifyParallelism() goroutines (each chain's own
// layers additionally dedup against the memo and fan out inside Verify),
// so a round that floods several cold chains at a node verifies on all
// cores instead of one. Verdicts are pure per-chain functions, so the
// error slots are deterministic at any worker count.
//
// Nil chains are skipped (errs entry stays nil), letting ingest loops
// batch a sparse candidate set without compacting it. The chains must be
// distinct values — Verify fills each chain's nested-encoding cache — and
// dir must be safe for concurrent reads, as every Directory in this
// repository is.
func VerifyChains(chains []*Chain, senders []model.NodeID, dir Directory) []error {
	errs := make([]error, len(chains))
	live := 0
	for _, c := range chains {
		if c != nil {
			live++
		}
	}
	workers := VerifyParallelism()
	if workers > live {
		workers = live
	}
	if workers <= 1 {
		for i, c := range chains {
			if c != nil {
				_, errs[i] = c.Verify(senders[i], dir)
			}
		}
		return errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(chains) {
				return
			}
			if chains[i] == nil {
				continue
			}
			_, errs[i] = chains[i].Verify(senders[i], dir)
		}
	}
	wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return errs
}
