package sig

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder().
		Bytes([]byte("hello")).
		String("world").
		Uint64(42).
		Int(-7).
		Bytes(nil)
	d := NewDecoder(e.Encoding())
	if got := d.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes = %q, want %q", got, "hello")
	}
	if got := d.String(); got != "world" {
		t.Errorf("String = %q, want %q", got, "world")
	}
	if got := d.Uint64(); got != 42 {
		t.Errorf("Uint64 = %d, want 42", got)
	}
	if got := d.Int(); got != -7 {
		t.Errorf("Int = %d, want -7", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %q, want empty", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := NewEncoder().Bytes([]byte("payload")).Uint64(9).Encoding()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Bytes()
		d.Uint64()
		if err := d.Finish(); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	enc := NewEncoder().Bytes([]byte("x")).Encoding()
	enc = append(enc, 0xFF)
	d := NewDecoder(enc)
	d.Bytes()
	if err := d.Finish(); err == nil {
		t.Error("trailing garbage not detected")
	}
}

func TestDecodeHostileLength(t *testing.T) {
	// A length prefix far beyond the buffer must fail cleanly, without
	// huge allocation or panic.
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	d := NewDecoder(data)
	if got := d.Bytes(); got != nil {
		t.Errorf("hostile length returned %d bytes", len(got))
	}
	if d.Err() == nil {
		t.Error("hostile length not reported")
	}
}

func TestDecodeErrorSticky(t *testing.T) {
	d := NewDecoder(nil)
	d.Bytes() // fails
	first := d.Err()
	d.Uint64()
	_ = d.String()
	if d.Err() != first {
		t.Error("first error not sticky")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(a []byte, s string, u uint64, i int) bool {
		enc := NewEncoder().Bytes(a).String(s).Uint64(u).Int(i).Encoding()
		d := NewDecoder(enc)
		ga := d.Bytes()
		gs := d.String()
		gu := d.Uint64()
		gi := d.Int()
		if err := d.Finish(); err != nil {
			return false
		}
		return bytes.Equal(ga, a) && gs == s && gu == u && gi == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoderNeverPanicsOnArbitraryInput(t *testing.T) {
	f := func(data []byte) bool {
		d := NewDecoder(data)
		d.Bytes()
		d.Int()
		_ = d.String()
		d.Uint64()
		_ = d.Finish() // outcome irrelevant; absence of panic is the property
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
