package sig

import (
	"bytes"
	"testing"

	"repro/internal/model"
)

// Native fuzz targets for the wire decoders. Byzantine nodes control
// every byte they send, so "no panic, no misbehaviour on arbitrary input"
// is a protocol-level security property, not just hygiene. Run with
//
//	go test -fuzz=FuzzUnmarshalChain ./internal/sig
//
// In normal test runs the seed corpus doubles as a regression suite.

func FuzzDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 'x'})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(NewEncoder().Bytes([]byte("v")).Int(-1).Uint64(1 << 60).Encoding())
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		d.Bytes()
		d.Int()
		d.Uint64()
		_ = d.String()
		_ = d.Finish()
	})
}

func FuzzUnmarshalChain(f *testing.F) {
	// Seed with a valid chain so the fuzzer mutates meaningful structure.
	scheme, err := ByName(SchemeToy)
	if err != nil {
		f.Fatal(err)
	}
	s0, err := scheme.Generate(bytes.NewReader(bytes.Repeat([]byte{7}, 64)))
	if err != nil {
		f.Fatal(err)
	}
	chain, err := NewChain([]byte("seed value"), s0)
	if err != nil {
		f.Fatal(err)
	}
	ext, err := chain.Extend(0, s0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(chain.Marshal())
	f.Add(ext.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	dir := MapDirectory{0: s0.Predicate(), 1: s0.Predicate()}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalChain(data)
		if err != nil {
			return
		}
		// Whatever parsed must verify deterministically and re-marshal to
		// an equivalent parse.
		_, _ = c.Verify(model.NodeID(0), dir)
		re, err := UnmarshalChain(c.Marshal())
		if err != nil {
			t.Fatalf("remarshal of parsed chain failed: %v", err)
		}
		if !bytes.Equal(re.Value(), c.Value()) || re.Len() != c.Len() {
			t.Fatalf("marshal round trip changed the chain")
		}
	})
}
