package sig

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The canonical encoding used for every signed payload in the repository.
//
// Agreement protocols sign structured data (names, nonces, nested signed
// messages). Signing requires a deterministic byte representation that both
// signer and verifier compute identically; this file provides a minimal
// length-prefixed tuple encoding:
//
//	uint32(len) || bytes, fields concatenated in order,
//	integers as big-endian uint64.
//
// The encoding is intentionally not self-describing: each protocol knows
// the shape of its own payloads, and a shape mismatch surfaces as a decode
// error, which protocols treat as a discovered failure (ReasonBadFormat).

// ErrTruncated reports an encoding shorter than its own length prefixes
// promise.
var ErrTruncated = errors.New("sig: truncated encoding")

// maxFieldLen bounds a single encoded field (16 MiB) so malformed or
// hostile length prefixes cannot drive huge allocations.
const maxFieldLen = 16 << 20

// Encoder incrementally builds a canonical tuple encoding.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes appends a length-prefixed byte field.
func (e *Encoder) Bytes(b []byte) *Encoder {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	e.buf = append(e.buf, n[:]...)
	e.buf = append(e.buf, b...)
	return e
}

// String appends a length-prefixed string field.
func (e *Encoder) String(s string) *Encoder { return e.Bytes([]byte(s)) }

// Uint64 appends a fixed-width big-endian integer field.
func (e *Encoder) Uint64(v uint64) *Encoder {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], v)
	e.buf = append(e.buf, n[:]...)
	return e
}

// Int appends an int as a fixed-width field. Negative values are encoded
// in two's complement and round-trip through Decoder.Int.
func (e *Encoder) Int(v int) *Encoder { return e.Uint64(uint64(int64(v))) }

// Encoding returns the accumulated bytes. The returned slice aliases the
// encoder's buffer; callers that keep encoding must copy it first.
func (e *Encoder) Encoding() []byte { return e.buf }

// Decoder reads back a canonical tuple encoding.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps data for decoding. The decoder does not copy data.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// fail records the first error and makes subsequent reads no-ops.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Bytes reads a length-prefixed byte field. It returns nil after any error.
func (d *Decoder) Bytes() []byte {
	if d.err != nil {
		return nil
	}
	if d.off+4 > len(d.buf) {
		d.fail(fmt.Errorf("%w: missing length prefix at offset %d", ErrTruncated, d.off))
		return nil
	}
	n := binary.BigEndian.Uint32(d.buf[d.off : d.off+4])
	d.off += 4
	if n > maxFieldLen {
		d.fail(fmt.Errorf("sig: field length %d exceeds limit", n))
		return nil
	}
	if d.off+int(n) > len(d.buf) {
		d.fail(fmt.Errorf("%w: field of %d bytes at offset %d", ErrTruncated, n, d.off))
		return nil
	}
	out := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// String reads a length-prefixed string field.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Uint64 reads a fixed-width integer field.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(fmt.Errorf("%w: missing uint64 at offset %d", ErrTruncated, d.off))
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off : d.off+8])
	d.off += 8
	return v
}

// Int reads an int field written by Encoder.Int.
func (d *Decoder) Int() int { return int(int64(d.Uint64())) }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or if unread bytes remain.
// Protocols call Finish to reject payloads with trailing garbage, which a
// failure-free run never produces.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("sig: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}
