package sig

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// The canonical encoding used for every signed payload in the repository.
//
// Agreement protocols sign structured data (names, nonces, nested signed
// messages). Signing requires a deterministic byte representation that both
// signer and verifier compute identically; this file provides a minimal
// length-prefixed tuple encoding:
//
//	uint32(len) || bytes, fields concatenated in order,
//	integers as big-endian uint64.
//
// The encoding is intentionally not self-describing: each protocol knows
// the shape of its own payloads, and a shape mismatch surfaces as a decode
// error, which protocols treat as a discovered failure (ReasonBadFormat).

// ErrTruncated reports an encoding shorter than its own length prefixes
// promise.
var ErrTruncated = errors.New("sig: truncated encoding")

// maxFieldLen bounds a single encoded field (16 MiB) so malformed or
// hostile length prefixes cannot drive huge allocations.
const maxFieldLen = 16 << 20

// Append-style primitives. Each appends one canonical field to dst and
// returns the extended slice, exactly as the Encoder methods would, but
// into a caller-owned buffer — the zero-allocation building blocks the
// hot paths (chain signatures, EIG relaying, wire framing) are built on.

// AppendBytes appends a length-prefixed byte field to dst.
func AppendBytes(dst, b []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	dst = append(dst, n[:]...)
	return append(dst, b...)
}

// AppendString appends a length-prefixed string field to dst.
func AppendString(dst []byte, s string) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	dst = append(dst, n[:]...)
	return append(dst, s...)
}

// AppendUint32 appends a raw big-endian uint32 — the length-prefix
// primitive underlying Bytes/String fields. Callers that stream a field's
// content separately (e.g. Chain.MarshalTo into a surrounding payload)
// write the prefix with it, then append exactly that many content bytes.
func AppendUint32(dst []byte, v uint32) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], v)
	return append(dst, n[:]...)
}

// AppendUint64 appends a fixed-width big-endian integer field to dst.
func AppendUint64(dst []byte, v uint64) []byte {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], v)
	return append(dst, n[:]...)
}

// AppendInt appends an int as a fixed-width field to dst. Negative values
// are encoded in two's complement and round-trip through Decoder.Int.
func AppendInt(dst []byte, v int) []byte { return AppendUint64(dst, uint64(int64(v))) }

// BytesFieldSize returns the encoded size of a byte/string field of n
// payload bytes; IntFieldSize is the encoded size of an integer field.
// Hot paths use these to presize buffers so one allocation suffices.
func BytesFieldSize(n int) int { return 4 + n }

// IntFieldSize is the encoded size of a Uint64/Int field.
const IntFieldSize = 8

// Encoder incrementally builds a canonical tuple encoding.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// encoderPool recycles encoders (and, more importantly, their grown
// buffers) across GetEncoder/Release pairs.
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns an empty encoder from a pool. Callers that are done
// with the encoding must call Release; the encoding returned by Encoding
// aliases the pooled buffer, so copy it (or use AppendTo) before
// releasing.
func GetEncoder() *Encoder {
	return encoderPool.Get().(*Encoder)
}

// Release resets the encoder and returns it to the pool.
func (e *Encoder) Release() {
	e.buf = e.buf[:0]
	encoderPool.Put(e)
}

// Reset discards the accumulated encoding, keeping the buffer capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Grow ensures capacity for at least n more bytes, so a presized encoding
// completes without reallocation.
func (e *Encoder) Grow(n int) {
	if cap(e.buf)-len(e.buf) < n {
		grown := make([]byte, len(e.buf), len(e.buf)+n)
		copy(grown, e.buf)
		e.buf = grown
	}
}

// Bytes appends a length-prefixed byte field.
func (e *Encoder) Bytes(b []byte) *Encoder {
	e.buf = AppendBytes(e.buf, b)
	return e
}

// String appends a length-prefixed string field.
func (e *Encoder) String(s string) *Encoder {
	e.buf = AppendString(e.buf, s)
	return e
}

// Uint64 appends a fixed-width big-endian integer field.
func (e *Encoder) Uint64(v uint64) *Encoder {
	e.buf = AppendUint64(e.buf, v)
	return e
}

// Int appends an int as a fixed-width field. Negative values are encoded
// in two's complement and round-trip through Decoder.Int.
func (e *Encoder) Int(v int) *Encoder {
	e.buf = AppendInt(e.buf, v)
	return e
}

// Raw appends b verbatim — no length prefix. For callers that already
// hold a correctly encoded field sequence (e.g. a slice of another
// encoder's output) and are splicing it into this encoding.
func (e *Encoder) Raw(b []byte) *Encoder {
	e.buf = append(e.buf, b...)
	return e
}

// Encoding returns the accumulated bytes. The returned slice aliases the
// encoder's buffer; callers that keep encoding must copy it first.
func (e *Encoder) Encoding() []byte { return e.buf }

// AppendTo appends the accumulated encoding to dst and returns the
// extended slice, leaving the encoder untouched. Use it to extract a
// pooled encoder's result before Release.
func (e *Encoder) AppendTo(dst []byte) []byte { return append(dst, e.buf...) }

// Len returns the size of the accumulated encoding.
func (e *Encoder) Len() int { return len(e.buf) }

// Decoder reads back a canonical tuple encoding.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps data for decoding. The decoder does not copy data.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Reset rewinds the decoder onto data, clearing any error. Two-pass
// decoders (size, then fill) use it to re-read a payload without a
// second Decoder allocation.
func (d *Decoder) Reset(data []byte) {
	d.buf = data
	d.off = 0
	d.err = nil
}

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// fail records the first error and makes subsequent reads no-ops.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Bytes reads a length-prefixed byte field. It returns nil after any error.
func (d *Decoder) Bytes() []byte {
	if d.err != nil {
		return nil
	}
	if d.off+4 > len(d.buf) {
		d.fail(fmt.Errorf("%w: missing length prefix at offset %d", ErrTruncated, d.off))
		return nil
	}
	n := binary.BigEndian.Uint32(d.buf[d.off : d.off+4])
	d.off += 4
	if n > maxFieldLen {
		d.fail(fmt.Errorf("sig: field length %d exceeds limit", n))
		return nil
	}
	if d.off+int(n) > len(d.buf) {
		d.fail(fmt.Errorf("%w: field of %d bytes at offset %d", ErrTruncated, n, d.off))
		return nil
	}
	out := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// String reads a length-prefixed string field.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Uint64 reads a fixed-width integer field.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(fmt.Errorf("%w: missing uint64 at offset %d", ErrTruncated, d.off))
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off : d.off+8])
	d.off += 8
	return v
}

// Int reads an int field written by Encoder.Int.
func (d *Decoder) Int() int { return int(int64(d.Uint64())) }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or if unread bytes remain.
// Protocols call Finish to reject payloads with trailing garbage, which a
// failure-free run never produces.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("sig: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}
