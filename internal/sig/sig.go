// Package sig provides the digital-signature abstraction the paper's model
// of computation assumes (Borcherding 1995, §2):
//
//	S1: a node can produce {m}_S if and only if it knows the secret key S
//	    and the message m;
//	S2: for each secret key S_i there is a public test predicate T_i with
//	    T_i({m}_S) = true ⇔ S = S_i;
//	S3: S_i cannot be extracted from signed messages or from T_i.
//
// The paper cites DSA and RSA as schemes that satisfy S1–S3 with
// sufficiently high probability. This package offers several stdlib-backed
// schemes (Ed25519, ECDSA P-256, RSA-2048) plus two schemes for testing and
// benchmarking (an HMAC scheme that trades S3 for speed, clearly marked,
// and a deterministic toy scheme for fast unit tests).
//
// A public key is exchanged on the wire as raw bytes; TestPredicate is the
// parsed, verification-capable form — the paper's T_i "cast into a test
// predicate which checks whether a message was signed with the
// corresponding secret key".
package sig

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Common errors returned by schemes.
var (
	// ErrBadKey reports a malformed or unparsable public key encoding.
	ErrBadKey = errors.New("sig: malformed public key")
	// ErrUnknownScheme reports a lookup of an unregistered scheme name.
	ErrUnknownScheme = errors.New("sig: unknown scheme")
)

// TestPredicate is the paper's T_i: a public verifier for one node's
// signatures. Implementations must be safe for concurrent use.
type TestPredicate interface {
	// Test reports whether sig is a valid signature on msg under this
	// predicate's secret key (S2). It must return false, never panic, on
	// arbitrary inputs.
	Test(msg, sig []byte) bool
	// Bytes returns the canonical wire encoding of the predicate, suitable
	// for broadcast during key distribution and for re-parsing with
	// Scheme.ParsePredicate.
	Bytes() []byte
	// Fingerprint returns a short stable identifier of the predicate for
	// logging and map keys. Equal predicates have equal fingerprints.
	Fingerprint() string
}

// Signer holds a secret key S_i and produces signatures (S1). A Signer is
// deliberately separable from its owner: the paper's fault model allows a
// faulty node to hand its Signer to an accomplice, and the adversary
// package exercises exactly that.
type Signer interface {
	// Sign produces {m}_S. Implementations may randomize; the returned
	// signature must satisfy the paired predicate's Test.
	Sign(msg []byte) ([]byte, error)
	// Predicate returns the test predicate paired with this secret key.
	Predicate() TestPredicate
}

// Scheme generates key pairs and parses wire-encoded predicates. Scheme
// implementations must be safe for concurrent use.
type Scheme interface {
	// Name returns the registry name of the scheme (e.g. "ed25519").
	Name() string
	// Generate creates a fresh key pair using entropy from rand.
	Generate(rand io.Reader) (Signer, error)
	// ParsePredicate decodes a predicate previously produced by
	// TestPredicate.Bytes. It returns ErrBadKey (possibly wrapped) on
	// malformed input.
	ParsePredicate(data []byte) (TestPredicate, error)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Scheme)
)

// Register makes a scheme available to ByName. It panics on duplicate
// names, which indicates a programmer error at init time.
func Register(s Scheme) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("sig: duplicate scheme registration %q", s.Name()))
	}
	registry[s.Name()] = s
}

// ByName returns the registered scheme with the given name.
func ByName(name string) (Scheme, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, name)
	}
	return s, nil
}

// Names returns the sorted names of all registered schemes.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
