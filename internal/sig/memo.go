package sig

import (
	"crypto/sha256"
	"io"
	"sync"
)

// Verified-signature memo.
//
// Every receiver of a chain re-verifies the same (predicate, payload,
// signature) triples: a relay verifies layers the previous relay already
// verified, the tail nodes all verify the identical disseminated chain,
// and the vector protocol multiplies that by n instances per round. The
// signatures are immutable and the predicates deterministic, so a triple
// that verified once verifies forever — memoizing successful checks turns
// the O(K) public-key verifies a hop performs on a K-layer chain into
// cache hits everywhere but the first verifier.
//
// Soundness: entries are keyed by SHA-256 digests of the predicate
// (scheme-qualified Fingerprint plus full canonical key bytes — the
// fingerprint alone is truncated, the key bytes alone lack scheme domain
// separation; together a collision needs same scheme AND same key), the
// payload, and the signature. Only SUCCESSFUL verifications are stored.
// Equal scheme + key bytes parse to the same verification function, so
// replaying a memoized triple is exactly re-presenting a signature that
// already passed the same predicate; no forgery becomes acceptable that
// Test itself would not accept (up to SHA-256 collisions, which the
// schemes' own security already assumes away). Failures are deliberately
// not cached so a predicate swap mid-run (tests do this) cannot mask a
// later success.
//
// Keying by content digest rather than predicate pointer identity is
// what makes cross-node hits real: under local authentication every node
// parses its own TestPredicate instance from the key-distribution wire
// bytes, so the n tail receivers of one disseminated chain hold n
// different pointers to the same key. (Hits span nodes only when they
// share a process, as the simulator's do; separate OS processes keep
// separate memos.)
//
// Both tables are bounded. The memo proper is two-generation: inserts go
// to the current generation, and when it fills the previous generation
// is dropped and the current one takes its place — lookups consult both,
// so the hot working set survives rotation. The per-instance predicate
// digest cache is cleared wholesale when it exceeds its limit, so
// Monte-Carlo workloads that mint predicates forever cannot pin them all
// in memory.

// memoKey identifies one verification by content digests alone; it
// retains no pointers.
type memoKey struct {
	pred    [sha256.Size]byte
	payload [sha256.Size]byte
	sig     [sha256.Size]byte
}

// memoGenerationLimit bounds each memo generation; the memo holds at
// most twice this many entries. predCacheLimit bounds the predicate
// digest cache (and therefore how many predicate instances it retains).
const (
	memoGenerationLimit = 1 << 14
	predCacheLimit      = 1 << 12
)

type verifyMemo struct {
	mu    sync.Mutex
	cur   map[memoKey]struct{}
	prev  map[memoKey]struct{}
	preds map[TestPredicate][sha256.Size]byte
}

var chainVerifyMemo = &verifyMemo{
	cur:   make(map[memoKey]struct{}),
	preds: make(map[TestPredicate][sha256.Size]byte),
}

// computePredDigest derives the scheme-separated predicate digest.
func computePredDigest(pred TestPredicate) [sha256.Size]byte {
	h := sha256.New()
	io.WriteString(h, pred.Fingerprint())
	h.Write([]byte{0})
	h.Write(pred.Bytes())
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// digestOf returns the predicate's memo digest, cached per instance so
// the steady-state cost is one map read per layer.
func (m *verifyMemo) digestOf(pred TestPredicate) [sha256.Size]byte {
	m.mu.Lock()
	d, ok := m.preds[pred]
	m.mu.Unlock()
	if ok {
		return d
	}
	d = computePredDigest(pred)
	m.mu.Lock()
	if len(m.preds) >= predCacheLimit {
		m.preds = make(map[TestPredicate][sha256.Size]byte, predCacheLimit)
	}
	m.preds[pred] = d
	m.mu.Unlock()
	return d
}

// test is the memoized counterpart of pred.Test.
func (m *verifyMemo) test(pred TestPredicate, payload, sg []byte) bool {
	key := memoKey{pred: m.digestOf(pred), payload: sha256.Sum256(payload), sig: sha256.Sum256(sg)}
	m.mu.Lock()
	_, hit := m.cur[key]
	if !hit {
		_, hit = m.prev[key]
	}
	m.mu.Unlock()
	if hit {
		return true
	}
	if !pred.Test(payload, sg) {
		return false
	}
	m.mu.Lock()
	if len(m.cur) >= memoGenerationLimit {
		m.prev = m.cur
		m.cur = make(map[memoKey]struct{}, memoGenerationLimit)
	}
	m.cur[key] = struct{}{}
	m.mu.Unlock()
	return true
}

// reset drops every memoized verification. The predicate digest cache
// survives: digests are pure functions of their predicates, so keeping
// them is always sound, and reset exists to measure cold VERIFICATION —
// a long-lived process has its peers' digests cached even when every
// chain is new. The cache stays bounded by predCacheLimit regardless.
func (m *verifyMemo) reset() {
	m.mu.Lock()
	m.cur = make(map[memoKey]struct{})
	m.prev = nil
	m.mu.Unlock()
}

// ResetVerifyMemo drops all memoized chain-signature verifications.
// Benchmarks call it to measure cold verification; production code never
// needs to.
func ResetVerifyMemo() { chainVerifyMemo.reset() }
