package sig

import (
	"crypto/sha256"
	"io"
	"sync"
)

// Verified-signature memo.
//
// Every receiver of a chain re-verifies the same (predicate, payload,
// signature) triples: a relay verifies layers the previous relay already
// verified, the tail nodes all verify the identical disseminated chain,
// and the vector protocol multiplies that by n instances per round. The
// signatures are immutable and the predicates deterministic, so a triple
// that verified once verifies forever — memoizing successful checks turns
// the O(K) public-key verifies a hop performs on a K-layer chain into
// cache hits everywhere but the first verifier.
//
// Soundness: entries are keyed by SHA-256 digests of the predicate
// (scheme-qualified Fingerprint plus full canonical key bytes — the
// fingerprint alone is truncated, the key bytes alone lack scheme domain
// separation; together a collision needs same scheme AND same key), the
// payload, and the signature. Only SUCCESSFUL verifications are stored.
// Equal scheme + key bytes parse to the same verification function, so
// replaying a memoized triple is exactly re-presenting a signature that
// already passed the same predicate; no forgery becomes acceptable that
// Test itself would not accept (up to SHA-256 collisions, which the
// schemes' own security already assumes away). Failures are deliberately
// not cached so a predicate swap mid-run (tests do this) cannot mask a
// later success.
//
// Keying by content digest rather than predicate pointer identity is
// what makes cross-node hits real: under local authentication every node
// parses its own TestPredicate instance from the key-distribution wire
// bytes, so the n tail receivers of one disseminated chain hold n
// different pointers to the same key. (Hits span nodes only when they
// share a process, as the simulator's do; separate OS processes keep
// separate memos.)
//
// Concurrency: the memo is sharded by key digest, each shard under its
// own mutex, so parallel verifiers (VerifyBatch's worker pool, campaign
// workers) do not serialize on one lock. Misses are single-flighted per
// key: the first goroutine to miss runs pred.Test and every concurrent
// miss on the same key waits for and adopts its verdict. Adoption is
// sound for failures too — the key pins scheme AND key bytes AND payload
// AND signature, and every scheme's Test is a deterministic function of
// exactly those, so two goroutines holding the same key would compute
// the same verdict. (Failures are still not MEMOIZED; only concurrent
// waiters observe them.)
//
// All tables are bounded. Each shard's memo is two-generation: inserts go
// to the current generation, and when it fills the previous generation
// is dropped and the current one takes its place — lookups consult both,
// so the hot working set survives rotation. The per-instance predicate
// digest cache is cleared wholesale when it exceeds its limit, so
// Monte-Carlo workloads that mint predicates forever cannot pin them all
// in memory.

// memoKey identifies one verification by content digests alone; it
// retains no pointers.
type memoKey struct {
	pred    [sha256.Size]byte
	payload [sha256.Size]byte
	sig     [sha256.Size]byte
}

// memoShardCount shards the memo by signature digest (a power of two).
// memoGenerationLimit bounds each shard generation so the memo holds at
// most 2*memoShardCount*memoGenerationLimit entries — the same total
// bound the pre-sharding single-map memo had. predCacheLimit bounds the
// predicate digest cache (and therefore how many predicate instances it
// retains).
const (
	memoShardCount      = 16
	memoGenerationLimit = (1 << 14) / memoShardCount
	predCacheLimit      = 1 << 12
)

// inflightTest is one in-progress pred.Test: the leader closes done after
// publishing ok, and every waiter that found the key in the shard's
// inflight table adopts ok instead of re-running the test.
type inflightTest struct {
	done chan struct{}
	ok   bool
}

type memoShard struct {
	mu       sync.Mutex
	cur      map[memoKey]struct{}
	prev     map[memoKey]struct{}
	inflight map[memoKey]*inflightTest
}

type verifyMemo struct {
	shards [memoShardCount]memoShard
	predMu sync.RWMutex
	preds  map[TestPredicate][sha256.Size]byte
}

func newVerifyMemo() *verifyMemo {
	m := &verifyMemo{preds: make(map[TestPredicate][sha256.Size]byte)}
	for i := range m.shards {
		m.shards[i].cur = make(map[memoKey]struct{})
	}
	return m
}

var chainVerifyMemo = newVerifyMemo()

// computePredDigest derives the scheme-separated predicate digest.
func computePredDigest(pred TestPredicate) [sha256.Size]byte {
	h := sha256.New()
	io.WriteString(h, pred.Fingerprint())
	h.Write([]byte{0})
	h.Write(pred.Bytes())
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// digestOf returns the predicate's memo digest, cached per instance so
// the steady-state cost is one read-locked map read per layer.
func (m *verifyMemo) digestOf(pred TestPredicate) [sha256.Size]byte {
	m.predMu.RLock()
	d, ok := m.preds[pred]
	m.predMu.RUnlock()
	if ok {
		return d
	}
	d = computePredDigest(pred)
	m.predMu.Lock()
	if len(m.preds) >= predCacheLimit {
		m.preds = make(map[TestPredicate][sha256.Size]byte, predCacheLimit)
	}
	m.preds[pred] = d
	m.predMu.Unlock()
	return d
}

// keyOf builds the memo key for one (predicate, payload, signature)
// triple.
func (m *verifyMemo) keyOf(pred TestPredicate, payload, sg []byte) memoKey {
	return memoKey{pred: m.digestOf(pred), payload: sha256.Sum256(payload), sig: sha256.Sum256(sg)}
}

// shardOf picks the shard for a key. The signature digest is already
// uniform, so its low bits are the shard index.
func (m *verifyMemo) shardOf(key *memoKey) *memoShard {
	return &m.shards[key.sig[0]&(memoShardCount-1)]
}

// hit reports whether the key is already memoized, without running or
// waiting on any test. VerifyBatch's dedup pre-pass uses it to split a
// batch into memo hits and residual work.
func (m *verifyMemo) hit(key memoKey) bool {
	s := m.shardOf(&key)
	s.mu.Lock()
	_, ok := s.cur[key]
	if !ok {
		_, ok = s.prev[key]
	}
	s.mu.Unlock()
	return ok
}

// testKey is testMemo for callers that already computed the key (the
// batch path computes every key up front for its dedup pre-pass).
func (m *verifyMemo) testKey(key memoKey, pred TestPredicate, payload, sg []byte) bool {
	s := m.shardOf(&key)
	s.mu.Lock()
	if _, ok := s.cur[key]; ok {
		s.mu.Unlock()
		return true
	}
	if _, ok := s.prev[key]; ok {
		s.mu.Unlock()
		return true
	}
	if fl, ok := s.inflight[key]; ok {
		// Another goroutine is running this exact test; adopt its verdict.
		s.mu.Unlock()
		<-fl.done
		return fl.ok
	}
	fl := &inflightTest{done: make(chan struct{})}
	if s.inflight == nil {
		s.inflight = make(map[memoKey]*inflightTest)
	}
	s.inflight[key] = fl
	s.mu.Unlock()

	ok := pred.Test(payload, sg)

	s.mu.Lock()
	delete(s.inflight, key)
	if ok {
		if len(s.cur) >= memoGenerationLimit {
			s.prev = s.cur
			s.cur = make(map[memoKey]struct{}, memoGenerationLimit)
		}
		s.cur[key] = struct{}{}
	}
	s.mu.Unlock()
	fl.ok = ok
	close(fl.done)
	return ok
}

// test is the memoized counterpart of pred.Test.
func (m *verifyMemo) test(pred TestPredicate, payload, sg []byte) bool {
	return m.testKey(m.keyOf(pred, payload, sg), pred, payload, sg)
}

// reset drops every memoized verification. The predicate digest cache
// survives: digests are pure functions of their predicates, so keeping
// them is always sound, and reset exists to measure cold VERIFICATION —
// a long-lived process has its peers' digests cached even when every
// chain is new. The cache stays bounded by predCacheLimit regardless.
// In-flight tests are untouched; they complete into the fresh maps.
func (m *verifyMemo) reset() {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		s.cur = make(map[memoKey]struct{})
		s.prev = nil
		s.mu.Unlock()
	}
}

// ResetVerifyMemo drops all memoized chain-signature verifications.
// Benchmarks call it to measure cold verification; production code never
// needs to.
func ResetVerifyMemo() { chainVerifyMemo.reset() }
