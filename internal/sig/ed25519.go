package sig

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// SchemeEd25519 is the name of the Ed25519 scheme. It is the default scheme
// throughout the repository: fast, small signatures, deterministic, and a
// faithful modern stand-in for the paper's DSA citation.
const SchemeEd25519 = "ed25519"

func init() { Register(ed25519Scheme{}) }

type ed25519Scheme struct{}

func (ed25519Scheme) Name() string { return SchemeEd25519 }

func (ed25519Scheme) Generate(rand io.Reader) (Signer, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("sig/ed25519: generate: %w", err)
	}
	return &ed25519Signer{priv: priv, pred: &ed25519Predicate{pub: pub}}, nil
}

func (ed25519Scheme) ParsePredicate(data []byte) (TestPredicate, error) {
	if len(data) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("%w: ed25519 key must be %d bytes, got %d",
			ErrBadKey, ed25519.PublicKeySize, len(data))
	}
	pub := make(ed25519.PublicKey, ed25519.PublicKeySize)
	copy(pub, data)
	return &ed25519Predicate{pub: pub}, nil
}

type ed25519Signer struct {
	priv ed25519.PrivateKey
	pred *ed25519Predicate
}

var _ Signer = (*ed25519Signer)(nil)

func (s *ed25519Signer) Sign(msg []byte) ([]byte, error) {
	return ed25519.Sign(s.priv, msg), nil
}

func (s *ed25519Signer) Predicate() TestPredicate { return s.pred }

type ed25519Predicate struct {
	pub ed25519.PublicKey
}

var _ TestPredicate = (*ed25519Predicate)(nil)

func (p *ed25519Predicate) Test(msg, sig []byte) bool {
	if len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(p.pub, msg, sig)
}

func (p *ed25519Predicate) Bytes() []byte {
	out := make([]byte, len(p.pub))
	copy(out, p.pub)
	return out
}

func (p *ed25519Predicate) Fingerprint() string {
	sum := sha256.Sum256(p.pub)
	return SchemeEd25519 + ":" + hex.EncodeToString(sum[:8])
}
