package sig

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// fastSchemes are the schemes cheap enough to exercise in every test.
func fastSchemes(t *testing.T) []Scheme {
	t.Helper()
	var out []Scheme
	for _, name := range []string{SchemeEd25519, SchemeECDSA, SchemeHMAC, SchemeToy} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		out = append(out, s)
	}
	return out
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := map[string]bool{
		SchemeEd25519: true, SchemeECDSA: true, SchemeRSA: true,
		SchemeHMAC: true, SchemeToy: true,
	}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing registered schemes: %v", want)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-scheme"); err == nil {
		t.Error("ByName on unknown scheme succeeded")
	}
}

func TestSignVerifyAllSchemes(t *testing.T) {
	msg := []byte("the byzantine generals problem")
	for _, scheme := range fastSchemes(t) {
		t.Run(scheme.Name(), func(t *testing.T) {
			signer, err := scheme.Generate(rand.Reader)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			sig, err := signer.Sign(msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			pred := signer.Predicate()
			if !pred.Test(msg, sig) {
				t.Error("valid signature rejected (S2)")
			}
			if pred.Test([]byte("another message"), sig) {
				t.Error("signature accepted for wrong message")
			}
			// Tampered signature must fail.
			bad := append([]byte(nil), sig...)
			bad[0] ^= 0x01
			if pred.Test(msg, bad) {
				t.Error("tampered signature accepted")
			}
			// Empty/garbage signatures must fail, not panic.
			if pred.Test(msg, nil) {
				t.Error("nil signature accepted")
			}
			if pred.Test(msg, []byte{1, 2, 3}) {
				t.Error("garbage signature accepted")
			}
		})
	}
}

func TestPredicateRoundTrip(t *testing.T) {
	msg := []byte("round trip")
	for _, scheme := range fastSchemes(t) {
		t.Run(scheme.Name(), func(t *testing.T) {
			signer, err := scheme.Generate(rand.Reader)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			sig, err := signer.Sign(msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			wire := signer.Predicate().Bytes()
			parsed, err := scheme.ParsePredicate(wire)
			if err != nil {
				t.Fatalf("ParsePredicate: %v", err)
			}
			if !parsed.Test(msg, sig) {
				t.Error("re-parsed predicate rejected valid signature")
			}
			if parsed.Fingerprint() != signer.Predicate().Fingerprint() {
				t.Error("fingerprint changed across round trip")
			}
		})
	}
}

func TestParsePredicateMalformed(t *testing.T) {
	for _, scheme := range fastSchemes(t) {
		t.Run(scheme.Name(), func(t *testing.T) {
			for _, data := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{7}, 5)} {
				if _, err := scheme.ParsePredicate(data); err == nil {
					t.Errorf("ParsePredicate(%d bytes) succeeded", len(data))
				}
			}
		})
	}
}

func TestTwoKeysDistinct(t *testing.T) {
	// Distinct key pairs must not cross-verify (the ⇔ in S2).
	for _, scheme := range fastSchemes(t) {
		t.Run(scheme.Name(), func(t *testing.T) {
			s1, err := scheme.Generate(rand.Reader)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			s2, err := scheme.Generate(rand.Reader)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			msg := []byte("cross check")
			sig1, err := s1.Sign(msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if s2.Predicate().Test(msg, sig1) {
				t.Error("signature verified under a different key's predicate")
			}
		})
	}
}

func TestRSASignVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA key generation is slow")
	}
	scheme, err := ByName(SchemeRSA)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	signer, err := scheme.Generate(rand.Reader)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	msg := []byte("rsa message")
	sg, err := signer.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !signer.Predicate().Test(msg, sg) {
		t.Error("valid RSA signature rejected")
	}
	wire := signer.Predicate().Bytes()
	parsed, err := scheme.ParsePredicate(wire)
	if err != nil {
		t.Fatalf("ParsePredicate: %v", err)
	}
	if !parsed.Test(msg, sg) {
		t.Error("re-parsed RSA predicate rejected valid signature")
	}
}

func TestToyKeyExtraction(t *testing.T) {
	// The toy scheme deliberately violates S3: the key rides in the
	// signature. This test pins that property (adversarial tests rely on
	// it) and shows the stolen key signs successfully.
	scheme, err := ByName(SchemeToy)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	signer, err := scheme.Generate(rand.Reader)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sg, err := signer.Sign([]byte("observed traffic"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	key, ok := ExtractToyKey(sg)
	if !ok {
		t.Fatal("ExtractToyKey failed")
	}
	thief, err := NewToySignerFromKey(key)
	if err != nil {
		t.Fatalf("NewToySignerFromKey: %v", err)
	}
	forged, err := thief.Sign([]byte("forged statement"))
	if err != nil {
		t.Fatalf("thief.Sign: %v", err)
	}
	if !signer.Predicate().Test([]byte("forged statement"), forged) {
		t.Error("stolen toy key failed to forge — S3 violation property lost")
	}
}

func TestHMACSymmetryCaveat(t *testing.T) {
	// The HMAC scheme's documented S3 violation: the predicate holder can
	// forge. Pin it so nobody mistakes the scheme for a secure one.
	scheme, err := ByName(SchemeHMAC)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	signer, err := scheme.Generate(rand.Reader)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	pred, err := scheme.ParsePredicate(signer.Predicate().Bytes())
	if err != nil {
		t.Fatalf("ParsePredicate: %v", err)
	}
	forgerSigner, err := ByNameGenerateFromHMACKey(pred.Bytes())
	if err != nil {
		t.Fatalf("forge setup: %v", err)
	}
	forged, err := forgerSigner.Sign([]byte("forged"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !signer.Predicate().Test([]byte("forged"), forged) {
		t.Error("HMAC predicate holder could not forge — symmetry property lost")
	}
}

// ByNameGenerateFromHMACKey rebuilds an HMAC signer from predicate bytes,
// exercising the documented symmetry of the scheme.
func ByNameGenerateFromHMACKey(key []byte) (Signer, error) {
	pred := &hmacPredicate{key: append([]byte(nil), key...)}
	return &hmacSigner{pred: pred}, nil
}
