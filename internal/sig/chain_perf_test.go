package sig

import (
	"bytes"
	"testing"

	"repro/internal/model"
)

// Differential and allocation-regression tests for the cached
// nested-encoding fast paths. The slowXxx functions are the pre-cache
// reference implementations, kept verbatim as oracles: the optimized code
// must produce byte-identical encodings.

// slowEncodeNested is the original layer-by-layer nested encoding: a
// fresh encoder per layer, quadratic re-encoding. Oracle only.
func slowEncodeNested(c *Chain) []byte {
	enc := NewEncoder().Bytes(c.value).Bytes(c.sigs[0]).Encoding()
	for k := 1; k < len(c.sigs); k++ {
		enc = NewEncoder().
			Int(int(c.names[k-1])).
			Bytes(enc).
			Bytes(c.sigs[k]).
			Encoding()
	}
	return enc
}

// slowValuePayload / slowLinkPayload are the original encoder-built
// payloads. Oracles only.
func slowValuePayload(value []byte) []byte {
	return NewEncoder().String(tagChainValue).Bytes(value).Encoding()
}

func slowLinkPayload(assignee model.NodeID, nested []byte) []byte {
	return NewEncoder().String(tagChainLink).Int(int(assignee)).Bytes(nested).Encoding()
}

func TestNestedEncodingMatchesSlowOracle(t *testing.T) {
	f := newChainFixture(t, 6)
	for k := 1; k <= 6; k++ {
		c := f.buildChain(t, []byte("differential value"), k)

		// Cache filled at construction time (NewChain/Extend path).
		if got, want := c.nestedEncoding(), slowEncodeNested(c); !bytes.Equal(got, want) {
			t.Errorf("k=%d: cached nested encoding diverges from slow oracle", k)
		}

		// Cache filled lazily after a wire round-trip (computeNested path).
		parsed, err := UnmarshalChain(c.Marshal())
		if err != nil {
			t.Fatalf("UnmarshalChain: %v", err)
		}
		if parsed.nested != nil {
			t.Fatalf("k=%d: freshly parsed chain must not have a nested cache", k)
		}
		if got, want := parsed.nestedEncoding(), slowEncodeNested(parsed); !bytes.Equal(got, want) {
			t.Errorf("k=%d: lazily computed nested encoding diverges from slow oracle", k)
		}

		// Cache filled as a side effect of Verify's forward pass.
		reparsed, err := UnmarshalChain(c.Marshal())
		if err != nil {
			t.Fatalf("UnmarshalChain: %v", err)
		}
		if _, err := reparsed.Verify(model.NodeID(k-1), f.dir); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if got, want := reparsed.nested, slowEncodeNested(reparsed); !bytes.Equal(got, want) {
			t.Errorf("k=%d: Verify-filled nested cache diverges from slow oracle", k)
		}
	}
}

func TestPayloadHelpersMatchSlowOracles(t *testing.T) {
	values := [][]byte{nil, {}, []byte("v"), bytes.Repeat([]byte{0xAB}, 300)}
	for _, v := range values {
		if got, want := valuePayload(v), slowValuePayload(v); !bytes.Equal(got, want) {
			t.Errorf("valuePayload(%d bytes) diverges from oracle", len(v))
		}
		for _, who := range []model.NodeID{0, 1, 255, model.NoNode} {
			if got, want := linkPayload(who, v), slowLinkPayload(who, v); !bytes.Equal(got, want) {
				t.Errorf("linkPayload(%v, %d bytes) diverges from oracle", who, len(v))
			}
		}
	}
}

func TestAppendHelpersMatchEncoder(t *testing.T) {
	var dst []byte
	dst = AppendBytes(dst, []byte("field"))
	dst = AppendString(dst, "str")
	dst = AppendUint64(dst, 1<<40)
	dst = AppendInt(dst, -7)
	want := NewEncoder().Bytes([]byte("field")).String("str").Uint64(1 << 40).Int(-7).Encoding()
	if !bytes.Equal(dst, want) {
		t.Error("append-style helpers diverge from Encoder methods")
	}
	size := BytesFieldSize(len("field")) + BytesFieldSize(len("str")) + 2*IntFieldSize
	if len(dst) != size {
		t.Errorf("field-size accounting: got %d bytes, sized %d", len(dst), size)
	}
}

func TestMarshalToMatchesMarshal(t *testing.T) {
	f := newChainFixture(t, 4)
	for k := 1; k <= 4; k++ {
		c := f.buildChain(t, []byte("wire"), k)
		flat := c.Marshal()
		if got := c.MarshalTo(nil); !bytes.Equal(got, flat) {
			t.Errorf("k=%d: MarshalTo diverges from Marshal", k)
		}
		if got := c.MarshalSize(); got != len(flat) {
			t.Errorf("k=%d: MarshalSize = %d, wire is %d bytes", k, got, len(flat))
		}
	}
}

// TestChainExtendAllocs pins the allocation budget of Extend: the
// signature itself, the four fresh chain slices, and pool slack. The old
// implementation re-encoded every layer (O(K) encoder allocations); any
// regression past this bound reintroduces that.
func TestChainExtendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	f := newChainFixture(t, 10)
	c := f.buildChain(t, []byte("alloc probe"), 9)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Extend(8, f.signers[9]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("Chain.Extend allocates %.1f times per op, want <= 8", allocs)
	}
}

// TestChainVerifyAllocs pins the allocation budget of a warm Verify: the
// signers slice, plus amortized memo-map growth. The old implementation
// allocated two encoders plus buffers per layer.
func TestChainVerifyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	f := newChainFixture(t, 10)
	c := f.buildChain(t, []byte("alloc probe"), 10)
	// Prime the memo and the chain's nested cache.
	if _, err := c.Verify(9, f.dir); err != nil {
		t.Fatal(err)
	}
	// Steady state is 1 alloc (the returned signers slice); the bound
	// leaves room for pool/GC jitter while still catching any return to
	// the old two-encoders-per-layer behaviour (~70 allocs at 10 hops).
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Verify(9, f.dir); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("warm Chain.Verify allocates %.1f times per op, want <= 8", allocs)
	}
}

// TestVerifyMemoSoundness checks the memo cannot be poisoned into
// accepting a forgery: a chain that failed under one predicate set still
// fails after an identical chain verified under the real predicates.
func TestVerifyMemoSoundness(t *testing.T) {
	ResetVerifyMemo()
	f := newChainFixture(t, 3)
	c := f.buildChain(t, []byte("memo"), 3)
	if _, err := c.Verify(2, f.dir); err != nil {
		t.Fatalf("honest verify: %v", err)
	}
	// Same bytes, hostile directory: predicate identity differs, so the
	// memo must not vouch for it.
	other := newChainFixture(t, 3)
	if _, err := c.Verify(2, other.dir); err == nil {
		t.Error("chain verified under an unrelated directory — memo leaked across predicates")
	}
	// Tampering after a successful verify must still be caught.
	parsed, err := UnmarshalChain(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	parsed.sigs[0][0] ^= 0x01
	if _, err := parsed.Verify(2, f.dir); err == nil {
		t.Error("tampered chain verified — memo matched despite changed signature bytes")
	}
}

// TestVerifyMemoSchemeSeparation checks cross-scheme memo poisoning: a
// predicate of a DIFFERENT scheme built from the same raw key bytes
// (several schemes' Bytes() are unadorned key material) must not inherit
// memo entries earned under the original scheme.
func TestVerifyMemoSchemeSeparation(t *testing.T) {
	ResetVerifyMemo()
	f := newChainFixture(t, 2)
	c := f.buildChain(t, []byte("cross-scheme"), 2)
	if _, err := c.Verify(1, f.dir); err != nil {
		t.Fatalf("honest verify: %v", err)
	}
	// Re-key the directory with HMAC predicates over the ed25519 public
	// key bytes. Test would reject every layer; only a memo keyed without
	// scheme separation could accept.
	hmacScheme, err := ByName(SchemeHMAC)
	if err != nil {
		t.Fatal(err)
	}
	dir := make(MapDirectory)
	for node, pred := range f.dir {
		alias, err := hmacScheme.ParsePredicate(pred.Bytes())
		if err != nil {
			t.Fatalf("parse ed25519 key bytes as hmac key: %v", err)
		}
		dir[node] = alias
	}
	if _, err := c.Verify(1, dir); err == nil {
		t.Error("chain verified under same-key-bytes predicates of another scheme — memo lacks scheme separation")
	}
}
