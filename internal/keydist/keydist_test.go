package keydist_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// runKeyDist executes the protocol with the given processes; nodes[i] is
// nil for adversarial slots.
func runKeyDist(t *testing.T, cfg model.Config, procs []sim.Process) *metrics.Counters {
	t.Helper()
	counters := metrics.NewCounters()
	eng, err := sim.New(cfg, procs, sim.WithCounters(counters))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	eng.Run(keydist.RoundsTotal)
	return counters
}

// correctNodes builds n correct keydist participants with seeded entropy.
func correctNodes(t *testing.T, cfg model.Config, seed int64) ([]*keydist.Node, []sim.Process) {
	t.Helper()
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	nodes := make([]*keydist.Node, cfg.N)
	procs := make([]sim.Process, cfg.N)
	for i := 0; i < cfg.N; i++ {
		n, err := keydist.NewNode(cfg, model.NodeID(i), scheme, sim.SeededReader(sim.NodeSeed(seed, i)))
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
		nodes[i] = n
		procs[i] = n
	}
	return nodes, procs
}

func TestFailureFreeRunAllAccept(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16} {
		cfg := model.Config{N: n, T: 0}
		nodes, procs := correctNodes(t, cfg, int64(n))
		counters := runKeyDist(t, cfg, procs)

		// Paper: 3·n·(n−1) messages in 3 communication rounds.
		if got, want := counters.Messages(), keydist.ExpectedMessages(n); got != want {
			t.Errorf("n=%d: messages = %d, want %d", n, got, want)
		}
		if got := counters.CommunicationRounds(); got != keydist.CommunicationRounds {
			t.Errorf("n=%d: communication rounds = %d, want %d", n, got, keydist.CommunicationRounds)
		}
		for _, node := range nodes {
			if !node.Accepted() {
				t.Errorf("n=%d: %v accepted only %d/%d predicates", n, node.ID(), node.Directory().Len(), n)
			}
			if len(node.Discoveries()) != 0 {
				t.Errorf("n=%d: %v observed deviations in failure-free run: %v", n, node.ID(), node.Discoveries())
			}
			if !node.Finished() {
				t.Errorf("n=%d: %v not finished", n, node.ID())
			}
		}
	}
}

func TestG2AllCorrectNodesAgreeOnCorrectKeys(t *testing.T) {
	cfg := model.Config{N: 8, T: 0}
	nodes, procs := correctNodes(t, cfg, 42)
	runKeyDist(t, cfg, procs)
	for i, a := range nodes {
		for j, b := range nodes {
			if i == j {
				continue
			}
			for k := 0; k < cfg.N; k++ {
				if !a.Directory().AgreesWith(b.Directory(), model.NodeID(k)) {
					t.Errorf("directories of %v and %v disagree on %v", a.ID(), b.ID(), model.NodeID(k))
				}
			}
		}
	}
}

func TestG1ForeignClaimRejected(t *testing.T) {
	// Node 3 claims node 1's predicate. It cannot answer challenges, so
	// NO correct node accepts any predicate for node 3 — and node 1's own
	// key is still accepted everywhere (the claim does not poison it).
	cfg := model.Config{N: 4, T: 1}
	nodes, procs := correctNodes(t, cfg, 7)
	victimPred := nodes[1].Signer().Predicate()
	procs[3] = adversary.NewForeignClaimNode(cfg, 3, victimPred)
	nodes[3] = nil
	runKeyDist(t, cfg, procs)

	for i, node := range nodes {
		if node == nil {
			continue
		}
		if _, ok := node.Directory().PredicateOf(3); ok {
			t.Errorf("%v accepted a predicate for the claiming node", node.ID())
		}
		if pred, ok := node.Directory().PredicateOf(1); !ok {
			t.Errorf("%v failed to accept the victim's key", node.ID())
		} else if pred.Fingerprint() != victimPred.Fingerprint() {
			t.Errorf("%v accepted a wrong key for the victim", node.ID())
		}
		_ = i
	}
}

func TestG1ChallengeRelayDefeated(t *testing.T) {
	// Node 3 claims node 1's predicate and relays challenges to node 1
	// hoping to harvest signatures. The challenge names BOTH parties, so
	// node 1 declines to sign challenges claiming node 3 as the
	// challenged party — the attack the paper's G1 proof covers.
	cfg := model.Config{N: 4, T: 1}
	nodes, procs := correctNodes(t, cfg, 11)
	victim := nodes[1]
	procs[3] = adversary.NewChallengeRelayNode(cfg, 3, 1, victim.Signer().Predicate())
	nodes[3] = nil
	runKeyDist(t, cfg, procs)

	for _, node := range nodes {
		if node == nil {
			continue
		}
		if _, ok := node.Directory().PredicateOf(3); ok {
			t.Errorf("%v accepted the relayed claim — G1 violated", node.ID())
		}
	}
	// The victim must have refused to sign the misdirected challenges;
	// its discovery log shows the refusals.
	refused := false
	for _, d := range victim.Discoveries() {
		if d.Reason == model.ReasonProtocol {
			refused = true
		}
	}
	if !refused {
		t.Error("victim never saw (and refused) a misdirected challenge")
	}
}

func TestG3GapMixedPredicates(t *testing.T) {
	// A faulty node distributes predicate A to one half and predicate B
	// to the other, answering challenges consistently. Key distribution
	// CANNOT detect this (the paper is explicit); the result is exactly a
	// G3 violation: correct nodes accept different predicates for it.
	cfg := model.Config{N: 6, T: 1}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	nodes, procs := correctNodes(t, cfg, 13)
	groupA := model.NewNodeSet(0, 1, 2)
	mixed, err := adversary.NewMixedPredicateNode(cfg, 5, scheme, sim.SeededReader(99), groupA)
	if err != nil {
		t.Fatalf("NewMixedPredicateNode: %v", err)
	}
	procs[5] = mixed
	nodes[5] = nil
	runKeyDist(t, cfg, procs)

	// Every correct node accepted SOME predicate for node 5 (it answered
	// all challenges)...
	for _, node := range nodes {
		if node == nil {
			continue
		}
		if _, ok := node.Directory().PredicateOf(5); !ok {
			t.Errorf("%v did not accept the mixed node's predicate", node.ID())
		}
		if len(node.Discoveries()) != 0 {
			t.Errorf("%v detected the mixed distribution during keydist — it must not be detectable here", node.ID())
		}
	}
	// ...but the two groups hold different ones: the G3 gap.
	pA, _ := nodes[0].Directory().PredicateOf(5)
	pB, _ := nodes[3].Directory().PredicateOf(5)
	if pA.Fingerprint() == pB.Fingerprint() {
		t.Fatal("mixed distribution produced identical predicates; attack misconfigured")
	}
	// Within each group, assignments agree (the split is between groups).
	if !nodes[0].Directory().AgreesWith(nodes[1].Directory(), 5) {
		t.Error("group A members disagree among themselves")
	}
	if !nodes[3].Directory().AgreesWith(nodes[4].Directory(), 5) {
		t.Error("group B members disagree among themselves")
	}
}

func TestSharedKeyCoalitionAccepted(t *testing.T) {
	// Two faulty nodes share one key pair and both run Fig. 1 with it.
	// Both get accepted (with the same predicate): the paper's remark
	// after G3 — the coalition can shuffle message attribution among
	// itself, but every correct node still assigns consistently.
	cfg := model.Config{N: 5, T: 2}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	nodes, procs := correctNodes(t, cfg, 17)
	sharers, err := adversary.NewSharedKeyGroup(cfg, scheme, sim.SeededReader(5), 3, 4)
	if err != nil {
		t.Fatalf("NewSharedKeyGroup: %v", err)
	}
	procs[3], procs[4] = sharers[0], sharers[1]
	nodes[3], nodes[4] = nil, nil
	runKeyDist(t, cfg, procs)

	for _, node := range nodes {
		if node == nil {
			continue
		}
		p3, ok3 := node.Directory().PredicateOf(3)
		p4, ok4 := node.Directory().PredicateOf(4)
		if !ok3 || !ok4 {
			t.Fatalf("%v did not accept the sharers", node.ID())
		}
		if p3.Fingerprint() != p4.Fingerprint() {
			t.Errorf("%v holds different predicates for the sharers", node.ID())
		}
	}
}

func TestSilentNodeJustMissing(t *testing.T) {
	// A silent (crashed) node: everyone else completes normally and
	// simply has no predicate for it.
	cfg := model.Config{N: 4, T: 1}
	nodes, procs := correctNodes(t, cfg, 23)
	procs[2] = sim.Silent{}
	nodes[2] = nil
	counters := runKeyDist(t, cfg, procs)

	wantMessages := 3*cfg.N*(cfg.N-1) - 3*3*2 + 3 // crude bound check below instead
	_ = wantMessages
	if counters.Messages() >= keydist.ExpectedMessages(cfg.N) {
		t.Errorf("messages = %d, expected fewer than failure-free %d",
			counters.Messages(), keydist.ExpectedMessages(cfg.N))
	}
	for _, node := range nodes {
		if node == nil {
			continue
		}
		if _, ok := node.Directory().PredicateOf(2); ok {
			t.Errorf("%v accepted a predicate for the silent node", node.ID())
		}
		if node.Directory().Len() != cfg.N-1 {
			t.Errorf("%v directory size = %d, want %d", node.ID(), node.Directory().Len(), cfg.N-1)
		}
	}
}

func TestDuplicatePredicateNeverAccepted(t *testing.T) {
	// A node that equivocates on its own predicate (two different ones to
	// the same receiver) is recorded as deviant and never accepted.
	cfg := model.Config{N: 3, T: 1}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	s1, err := scheme.Generate(sim.SeededReader(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	s2, err := scheme.Generate(sim.SeededReader(2))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	nodes, procs := correctNodes(t, cfg, 31)
	procs[2] = sim.ProcessFunc(func(round int, received []model.Message) []model.Message {
		if round != keydist.RoundBroadcast {
			return nil
		}
		return []model.Message{
			{To: 0, Kind: model.KindTestPredicate, Payload: s1.Predicate().Bytes()},
			{To: 0, Kind: model.KindTestPredicate, Payload: s2.Predicate().Bytes()},
			{To: 1, Kind: model.KindTestPredicate, Payload: s1.Predicate().Bytes()},
		}
	})
	nodes[2] = nil
	runKeyDist(t, cfg, procs)

	if _, ok := nodes[0].Directory().PredicateOf(2); ok {
		t.Error("node 0 accepted a predicate from the equivocator")
	}
	found := false
	for _, d := range nodes[0].Discoveries() {
		if d.Reason == model.ReasonUnexpectedMessage {
			found = true
		}
	}
	if !found {
		t.Error("node 0 did not record the duplicate-predicate deviation")
	}
}

func TestUnparsablePredicateIgnored(t *testing.T) {
	cfg := model.Config{N: 3, T: 1}
	nodes, procs := correctNodes(t, cfg, 37)
	procs[2] = sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != keydist.RoundBroadcast {
			return nil
		}
		return []model.Message{
			{To: 0, Kind: model.KindTestPredicate, Payload: []byte("not a key")},
			{To: 1, Kind: model.KindTestPredicate, Payload: []byte("not a key")},
		}
	})
	nodes[2] = nil
	runKeyDist(t, cfg, procs)
	for _, node := range nodes[:2] {
		if _, ok := node.Directory().PredicateOf(2); ok {
			t.Errorf("%v accepted an unparsable predicate", node.ID())
		}
	}
}

func TestChallengeScreening(t *testing.T) {
	self, other, third := model.NodeID(1), model.NodeID(2), model.NodeID(0)
	ch := keydist.Challenge{Challenger: other, Challenged: self, Nonce: []byte("nonce")}
	if !keydist.ShouldSign(ch, self, other) {
		t.Error("well-formed challenge refused")
	}
	if keydist.ShouldSign(ch, self, third) {
		t.Error("challenge signed for a relayed sender")
	}
	if keydist.ShouldSign(keydist.Challenge{Challenger: other, Challenged: third, Nonce: []byte("n")}, self, other) {
		t.Error("challenge for another node signed")
	}
}

func TestVerifyResponseRejections(t *testing.T) {
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	signer, err := scheme.Generate(sim.SeededReader(3))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	issued, err := keydist.NewChallenge(0, 1, sim.SeededReader(4))
	if err != nil {
		t.Fatalf("NewChallenge: %v", err)
	}
	good, err := keydist.Respond(issued, signer)
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}
	if err := keydist.VerifyResponse(issued, good, signer.Predicate()); err != nil {
		t.Fatalf("valid response rejected: %v", err)
	}

	// Wrong nonce.
	bad := good
	bad.Challenge.Nonce = []byte("wrong nonce 1234")
	if err := keydist.VerifyResponse(issued, bad, signer.Predicate()); err == nil {
		t.Error("wrong-nonce response accepted")
	}
	// Wrong names.
	bad = good
	bad.Challenge.Challenger = 2
	if err := keydist.VerifyResponse(issued, bad, signer.Predicate()); err == nil {
		t.Error("wrong-name response accepted")
	}
	// Wrong key.
	other, err := scheme.Generate(sim.SeededReader(5))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := keydist.VerifyResponse(issued, good, other.Predicate()); err == nil {
		t.Error("response accepted under wrong predicate")
	}
}

func TestChallengeResponseWireRoundTrip(t *testing.T) {
	ch, err := keydist.NewChallenge(3, 4, sim.SeededReader(6))
	if err != nil {
		t.Fatalf("NewChallenge: %v", err)
	}
	parsed, err := keydist.UnmarshalChallenge(ch.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalChallenge: %v", err)
	}
	if parsed.Challenger != 3 || parsed.Challenged != 4 || string(parsed.Nonce) != string(ch.Nonce) {
		t.Errorf("challenge round trip mismatch: %+v", parsed)
	}
	scheme, _ := sig.ByName(sig.SchemeEd25519)
	signer, err := scheme.Generate(sim.SeededReader(7))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	resp, err := keydist.Respond(ch, signer)
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}
	parsedResp, err := keydist.UnmarshalResponse(resp.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalResponse: %v", err)
	}
	if err := keydist.VerifyResponse(ch, parsedResp, signer.Predicate()); err != nil {
		t.Errorf("round-tripped response rejected: %v", err)
	}
	if _, err := keydist.UnmarshalChallenge([]byte("junk")); err == nil {
		t.Error("junk challenge parsed")
	}
	if _, err := keydist.UnmarshalResponse([]byte("junk")); err == nil {
		t.Error("junk response parsed")
	}
}

func TestNonceUniquenessProperty(t *testing.T) {
	// Challenges must never repeat nonces: a repeated nonce would let an
	// old signed response be replayed to claim a key. With 16-byte random
	// nonces, collisions across a large sample indicate a broken source.
	rand := sim.SeededReader(12345)
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		ch, err := keydist.NewChallenge(0, 1, rand)
		if err != nil {
			t.Fatalf("NewChallenge: %v", err)
		}
		if len(ch.Nonce) != keydist.NonceSize {
			t.Fatalf("nonce size = %d", len(ch.Nonce))
		}
		key := string(ch.Nonce)
		if seen[key] {
			t.Fatalf("nonce collision after %d draws", i)
		}
		seen[key] = true
	}
}

func TestResponseNotReplayableAcrossChallenges(t *testing.T) {
	// A response harvested for one challenge must not satisfy another
	// (fresh nonce), even between the same two parties.
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	signer, err := scheme.Generate(sim.SeededReader(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rand := sim.SeededReader(2)
	first, err := keydist.NewChallenge(0, 1, rand)
	if err != nil {
		t.Fatalf("NewChallenge: %v", err)
	}
	resp, err := keydist.Respond(first, signer)
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}
	second, err := keydist.NewChallenge(0, 1, rand)
	if err != nil {
		t.Fatalf("NewChallenge: %v", err)
	}
	if err := keydist.VerifyResponse(second, resp, signer.Predicate()); err == nil {
		t.Error("stale response accepted for a fresh challenge")
	}
}
