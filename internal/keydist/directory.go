// Package keydist implements the paper's key-distribution protocol
// (Borcherding 1995, Fig. 1), which establishes *local authentication*:
//
//	Protocol for each node P_i:
//	  generate a secret key S_i and an appropriate test predicate T_i
//	  send T_i to all other nodes
//	  for each received T_j:
//	    select a random number r_j
//	    send {P_i, P_j, r_j} to P_j
//	  for each received {P_j, P_i, r} from P_j:
//	    send {P_j, P_i, r}_{S_i} to P_j
//	  for each received {P_i, P_j, r}_{S_j} from P_j:
//	    if T_j({P_i, P_j, r}) = true and r = r_j:
//	      accept T_j as belonging to P_j
//
// The protocol needs 3·n·(n−1) messages in 3 communication rounds and
// works with an arbitrary number of arbitrarily faulty nodes. It yields
// assignment properties G1 and G2 (paper Theorem 2): no faulty node can
// claim a correct node's key, and every correct node's key is accepted by
// all correct nodes. Property G3 (globally consistent assignment) does NOT
// hold — faulty nodes may distribute different predicates to different
// correct nodes — but Theorem 4 shows such behaviour is discovered once
// all protocol messages are chain-signed.
package keydist

import (
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/sig"
)

// Directory is one node's accepted mapping from peers to test predicates —
// the local-authentication state that the key-distribution protocol
// builds. Under local authentication each node owns a private Directory;
// directories at different correct nodes agree on the predicates of
// correct nodes (G2) but may disagree about faulty ones.
//
// Directory implements sig.Directory, so chain-signature verification in
// the failure-discovery protocols consumes it directly. It is safe for
// concurrent use.
type Directory struct {
	mu    sync.RWMutex
	owner model.NodeID
	preds map[model.NodeID]sig.TestPredicate
}

var _ sig.Directory = (*Directory)(nil)

// NewDirectory creates an empty directory owned by the given node.
func NewDirectory(owner model.NodeID) *Directory {
	return &Directory{owner: owner, preds: make(map[model.NodeID]sig.TestPredicate)}
}

// Owner returns the node whose view this directory represents.
func (d *Directory) Owner() model.NodeID { return d.owner }

// Accept records pred as belonging to node, as the final step of the
// challenge/response exchange. Accepting a second predicate for the same
// node replaces the first; callers that care (they all should) detect the
// duplicate beforehand and treat it as a discovered failure.
func (d *Directory) Accept(node model.NodeID, pred sig.TestPredicate) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.preds[node] = pred
}

// PredicateOf implements sig.Directory.
func (d *Directory) PredicateOf(node model.NodeID) (sig.TestPredicate, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.preds[node]
	return p, ok
}

// Len returns the number of accepted predicates.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.preds)
}

// Nodes returns the IDs with accepted predicates, in ascending order.
func (d *Directory) Nodes() []model.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]model.NodeID, 0, len(d.preds))
	for id := range d.preds {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AgreesWith reports whether two directories accepted the same predicate
// for the given node (or both accepted none). Experiment E5 uses this to
// measure G2 and to exhibit the G3 gap for faulty nodes.
func (d *Directory) AgreesWith(other *Directory, node model.NodeID) bool {
	p1, ok1 := d.PredicateOf(node)
	p2, ok2 := other.PredicateOf(node)
	if ok1 != ok2 {
		return false
	}
	if !ok1 {
		return true
	}
	return p1.Fingerprint() == p2.Fingerprint()
}
