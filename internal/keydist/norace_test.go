//go:build !race

package keydist

// raceEnabled reports that the race detector is on; its instrumentation
// inflates allocation counts, so AllocsPerRun regression tests skip.
const raceEnabled = false
