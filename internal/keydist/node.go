package keydist

import (
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/sig"
)

// Protocol round numbers. The protocol sends in rounds 1–3 and concludes
// with a message-free acceptance step, so it "takes 3 rounds of
// communication" in the paper's counting.
const (
	// RoundBroadcast is the round in which every node sends its test
	// predicate to all others.
	RoundBroadcast = 1
	// RoundChallenge is the round in which nonce challenges are sent.
	RoundChallenge = 2
	// RoundResponse is the round in which signed responses are returned.
	RoundResponse = 3
	// RoundsTotal is the number of engine steps the protocol needs: the
	// three communication rounds plus the acceptance step that consumes
	// the round-3 responses.
	RoundsTotal = 4
	// CommunicationRounds is the number of rounds that carry messages.
	CommunicationRounds = 3
)

// ExpectedMessages returns the protocol's total message count for a
// failure-free run with n nodes: each node sends its predicate to n−1
// peers, receives n−1 challenges, and returns n−1 responses — the paper's
// 3·n·(n−1).
func ExpectedMessages(n int) int { return 3 * n * (n - 1) }

// Node is a correct participant in the key-distribution protocol,
// implementing the sim Process contract. After the run completes,
// Directory holds the locally authentic predicate map and Signer the
// node's own secret key, ready for use by the failure-discovery protocols.
type Node struct {
	id     model.NodeID
	cfg    model.Config
	scheme sig.Scheme
	signer sig.Signer
	rand   io.Reader

	dir         *Directory
	pending     map[model.NodeID]*pendingPeer
	discoveries []model.Discovery
	finished    bool
}

// pendingPeer tracks one peer's predicate between reception and acceptance.
type pendingPeer struct {
	pred      sig.TestPredicate
	challenge Challenge
	// duplicated marks a peer that sent more than one predicate; no
	// failure-free run does that, so the deviation is recorded and the
	// peer is never accepted.
	duplicated bool
}

// NodeOption configures a Node beyond the required parameters.
type NodeOption func(*nodeConfig)

type nodeConfig struct {
	keyRand io.Reader
	signer  sig.Signer
}

// WithKeyRand draws key-generation entropy from r instead of the node's
// run entropy (nonces keep coming from the rand passed to NewNode). The
// split is what makes key material a pure function of a key seed alone:
// core.Cluster pins its keys with it so cached clusters and fresh ones
// derive byte-identical signatures, whatever run seed drew the nonces.
func WithKeyRand(r io.Reader) NodeOption {
	return func(c *nodeConfig) { c.keyRand = r }
}

// WithSigner adopts an already-generated key pair instead of generating
// one, overriding WithKeyRand. The caller owns the equivalence claim: a
// run is byte-identical to a generating one exactly when the signer was
// drawn from the entropy the node would have used — the shared
// key-material warmup (protocol.SetSharedKeyWarmup) generates from the
// same sim.KeyMaterialSeed streams for exactly this reason.
func WithSigner(s sig.Signer) NodeOption {
	return func(c *nodeConfig) { c.signer = s }
}

// NewNode creates a correct key-distribution participant. It generates the
// node's key pair immediately (the paper's "generate a secret key S_i and
// an appropriate test predicate T_i"), drawing entropy from rand — or from
// the WithKeyRand reader, when key material is pinned separately.
func NewNode(cfg model.Config, id model.NodeID, scheme sig.Scheme, rand io.Reader, opts ...NodeOption) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !id.Valid(cfg.N) {
		return nil, fmt.Errorf("keydist: node id %v out of range for n=%d", id, cfg.N)
	}
	nc := nodeConfig{keyRand: rand}
	for _, opt := range opts {
		opt(&nc)
	}
	signer := nc.signer
	if signer == nil {
		var err error
		signer, err = scheme.Generate(nc.keyRand)
		if err != nil {
			return nil, fmt.Errorf("keydist: generate key for %v: %w", id, err)
		}
	}
	n := &Node{
		id:      id,
		cfg:     cfg,
		scheme:  scheme,
		signer:  signer,
		rand:    rand,
		dir:     NewDirectory(id),
		pending: make(map[model.NodeID]*pendingPeer),
	}
	// A node trivially knows its own predicate.
	n.dir.Accept(id, signer.Predicate())
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() model.NodeID { return n.id }

// Signer returns the node's secret-key handle for use by later protocols.
func (n *Node) Signer() sig.Signer { return n.signer }

// Directory returns the node's accepted predicate map. It is only complete
// after the protocol run finishes.
func (n *Node) Directory() *Directory { return n.dir }

// Discoveries returns the protocol deviations this node observed. Key
// distribution itself does not require discovery for its guarantees, but
// deviations (duplicate predicates, bogus responses) are still deviations
// from all failure-free runs and are recorded for the experiments.
func (n *Node) Discoveries() []model.Discovery {
	out := make([]model.Discovery, len(n.discoveries))
	copy(out, n.discoveries)
	return out
}

// Finished reports protocol completion (sim.Finisher).
func (n *Node) Finished() bool { return n.finished }

// Accepted reports whether the protocol accepted a predicate for every
// peer — the failure-free outcome.
func (n *Node) Accepted() bool { return n.dir.Len() == n.cfg.N }

// Step implements the sim Process contract, executing Fig. 1 of the paper.
func (n *Node) Step(round int, received []model.Message) []model.Message {
	switch round {
	case RoundBroadcast:
		return n.broadcastPredicate()
	case RoundChallenge:
		return n.challengeAll(round, received)
	case RoundResponse:
		return n.respondAll(round, received)
	case RoundsTotal:
		n.acceptAll(round, received)
		n.finished = true
		return nil
	default:
		// Messages outside the protocol's rounds never occur in
		// failure-free runs; note the deviation and stay silent.
		if len(received) > 0 {
			n.discover(round, model.ReasonUnexpectedMessage,
				fmt.Sprintf("%d messages outside protocol rounds", len(received)))
		}
		return nil
	}
}

// broadcastPredicate implements "send T_i to all other nodes".
func (n *Node) broadcastPredicate() []model.Message {
	pred := n.signer.Predicate().Bytes()
	out := make([]model.Message, 0, n.cfg.N-1)
	for _, to := range n.cfg.Nodes() {
		if to == n.id {
			continue
		}
		out = append(out, model.Message{To: to, Kind: model.KindTestPredicate, Payload: pred})
	}
	return out
}

// challengeAll implements "for each received T_j: select a random number
// r_j, send {P_i, P_j, r_j} to P_j".
func (n *Node) challengeAll(round int, received []model.Message) []model.Message {
	var out []model.Message
	for _, m := range received {
		if m.Kind != model.KindTestPredicate {
			n.discover(round, model.ReasonUnexpectedMessage,
				fmt.Sprintf("%v sent %v during predicate broadcast", m.From, m.Kind))
			continue
		}
		pred, err := n.scheme.ParsePredicate(m.Payload)
		if err != nil {
			// An unparsable predicate can never be accepted; the sender
			// has forfeited authentication with this node.
			n.discover(round, model.ReasonBadFormat,
				fmt.Sprintf("unparsable predicate from %v: %v", m.From, err))
			continue
		}
		if prior, dup := n.pending[m.From]; dup {
			// No failure-free run delivers two predicates from one node.
			prior.duplicated = true
			n.discover(round, model.ReasonUnexpectedMessage,
				fmt.Sprintf("duplicate predicate from %v", m.From))
			continue
		}
		ch, err := NewChallenge(n.id, m.From, n.rand)
		if err != nil {
			// Entropy failure is an environment error, not a protocol
			// deviation; surface it loudly.
			panic(fmt.Sprintf("keydist: %v drawing nonce: %v", n.id, err))
		}
		n.pending[m.From] = &pendingPeer{pred: pred, challenge: ch}
		out = append(out, model.Message{To: m.From, Kind: model.KindChallenge, Payload: ch.Marshal()})
	}
	return out
}

// respondAll implements "for each received {P_j, P_i, r} from P_j: send
// {P_j, P_i, r}_{S_i} to P_j" — with the critical screen that the node
// signs only challenges naming itself and the true immediate sender.
func (n *Node) respondAll(round int, received []model.Message) []model.Message {
	var out []model.Message
	for _, m := range received {
		if m.Kind != model.KindChallenge {
			n.discover(round, model.ReasonUnexpectedMessage,
				fmt.Sprintf("%v sent %v during challenge round", m.From, m.Kind))
			continue
		}
		// ParseChallenge aliases the payload instead of copying the nonce;
		// safe here because the challenge is consumed within this round
		// (the response wire bytes copy the nonce) and never retained.
		ch, err := ParseChallenge(m.Payload)
		if err != nil {
			n.discover(round, model.ReasonBadFormat,
				fmt.Sprintf("unparsable challenge from %v: %v", m.From, err))
			continue
		}
		if !ShouldSign(ch, n.id, m.From) {
			// Refuse: the challenge names the wrong parties. Signing here
			// is exactly the hole that would let a faulty relay claim our
			// key, or claim another node's key with our help.
			n.discover(round, model.ReasonProtocol,
				fmt.Sprintf("challenge from %v names (%v,%v)", m.From, ch.Challenger, ch.Challenged))
			continue
		}
		resp, err := Respond(ch, n.signer)
		if err != nil {
			panic(fmt.Sprintf("keydist: %v signing challenge: %v", n.id, err))
		}
		out = append(out, model.Message{To: m.From, Kind: model.KindChallengeResponse, Payload: resp.Marshal()})
	}
	return out
}

// acceptAll implements the final rule: "if T_j({P_i, P_j, r}) = true and
// r = r_j: accept T_j as belonging to P_j".
func (n *Node) acceptAll(round int, received []model.Message) {
	for _, m := range received {
		if m.Kind != model.KindChallengeResponse {
			n.discover(round, model.ReasonUnexpectedMessage,
				fmt.Sprintf("%v sent %v during response round", m.From, m.Kind))
			continue
		}
		// Aliasing parse: the response is checked and dropped within this
		// round, so no copy of nonce or signature is needed.
		resp, err := ParseResponse(m.Payload)
		if err != nil {
			n.discover(round, model.ReasonBadFormat,
				fmt.Sprintf("unparsable response from %v: %v", m.From, err))
			continue
		}
		p, ok := n.pending[m.From]
		if !ok {
			n.discover(round, model.ReasonUnexpectedMessage,
				fmt.Sprintf("response from unchallenged node %v", m.From))
			continue
		}
		if p.duplicated {
			// The peer equivocated on its predicate; never accept it.
			continue
		}
		if err := VerifyResponse(p.challenge, resp, p.pred); err != nil {
			n.discover(round, model.ReasonBadSignature,
				fmt.Sprintf("response from %v: %v", m.From, err))
			continue
		}
		n.dir.Accept(m.From, p.pred)
	}
}

// discover records a deviation from all failure-free runs.
func (n *Node) discover(round int, reason model.FailureReason, detail string) {
	n.discoveries = append(n.discoveries, model.Discovery{
		Node:   n.id,
		Round:  round,
		Reason: reason,
		Detail: detail,
	})
}
