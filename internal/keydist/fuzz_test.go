package keydist

import (
	"testing"

	"repro/internal/sim"
)

// Fuzz targets for the key-distribution wire formats: challenges and
// responses arrive from arbitrary (possibly faulty) peers and must parse
// defensively.

func FuzzUnmarshalChallenge(f *testing.F) {
	ch, err := NewChallenge(0, 1, sim.SeededReader(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ch.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalChallenge(data)
		if err != nil {
			return
		}
		// Round trip must be stable.
		c2, err := UnmarshalChallenge(c.Marshal())
		if err != nil {
			t.Fatalf("remarshal failed: %v", err)
		}
		if c2.Challenger != c.Challenger || c2.Challenged != c.Challenged ||
			string(c2.Nonce) != string(c.Nonce) {
			t.Fatal("challenge round trip changed fields")
		}
	})
}

func FuzzUnmarshalResponse(f *testing.F) {
	ch, err := NewChallenge(0, 1, sim.SeededReader(2))
	if err != nil {
		f.Fatal(err)
	}
	resp := Response{Challenge: ch, Signature: []byte("not a real signature")}
	f.Add(resp.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalResponse(data)
		if err != nil {
			return
		}
		if _, err := UnmarshalResponse(r.Marshal()); err != nil {
			t.Fatalf("remarshal failed: %v", err)
		}
	})
}
