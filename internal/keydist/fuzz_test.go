package keydist

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// Fuzz targets for the key-distribution wire formats: challenges and
// responses arrive from arbitrary (possibly faulty) peers and must parse
// defensively. Seeds include truncated and overlong frames so the
// trailing-byte rejection path (frames are validated before any field is
// copied) stays covered.

func FuzzUnmarshalChallenge(f *testing.F) {
	ch, err := NewChallenge(0, 1, sim.SeededReader(1))
	if err != nil {
		f.Fatal(err)
	}
	wire := ch.Marshal()
	f.Add(wire)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(wire[:len(wire)-1])                          // truncated inside the nonce
	f.Add(wire[:2*8])                                  // truncated at the length prefix
	f.Add(append(wire[:len(wire):len(wire)], 0))       // one trailing byte
	f.Add(append(wire[:len(wire):len(wire)], wire...)) // a whole second frame
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalChallenge(data)
		if err != nil {
			return
		}
		// A parse that succeeded consumed the whole frame: re-encoding
		// must reproduce the input bytes exactly.
		if !bytes.Equal(c.Marshal(), data) {
			t.Fatalf("accepted frame does not round-trip: %x", data)
		}
		// The aliasing parser must agree with the owning one.
		aliased, err := ParseChallenge(data)
		if err != nil {
			t.Fatalf("ParseChallenge rejected what UnmarshalChallenge accepted: %v", err)
		}
		if aliased.Challenger != c.Challenger || aliased.Challenged != c.Challenged ||
			!bytes.Equal(aliased.Nonce, c.Nonce) {
			t.Fatal("ParseChallenge and UnmarshalChallenge disagree")
		}
	})
}

func FuzzUnmarshalResponse(f *testing.F) {
	ch, err := NewChallenge(0, 1, sim.SeededReader(2))
	if err != nil {
		f.Fatal(err)
	}
	resp := Response{Challenge: ch, Signature: []byte("not a real signature")}
	wire := resp.Marshal()
	f.Add(wire)
	f.Add([]byte{})
	f.Add(wire[:len(wire)-1])                       // truncated signature
	f.Add(wire[:ch.MarshalSize()])                  // missing signature field
	f.Add(append(wire[:len(wire):len(wire)], 0xFF)) // trailing byte
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalResponse(data)
		if err != nil {
			return
		}
		if !bytes.Equal(r.Marshal(), data) {
			t.Fatalf("accepted frame does not round-trip: %x", data)
		}
		aliased, err := ParseResponse(data)
		if err != nil {
			t.Fatalf("ParseResponse rejected what UnmarshalResponse accepted: %v", err)
		}
		if !bytes.Equal(aliased.Signature, r.Signature) || !bytes.Equal(aliased.Challenge.Nonce, r.Challenge.Nonce) {
			t.Fatal("ParseResponse and UnmarshalResponse disagree")
		}
	})
}
