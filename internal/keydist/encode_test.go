package keydist

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/sig"
)

// Differential oracles for the challenge/response wire formats and the
// signing payload. The slow implementations below are the pre-PR-3
// encoder-returning code, kept verbatim per the PERF.md ground rule:
// wire bytes are consensus-critical, so every fast path must be proven
// byte-identical to the original, not just plausible.

// slowMarshalChallenge is the original Challenge.Marshal.
func slowMarshalChallenge(c Challenge) []byte {
	return sig.NewEncoder().
		Int(int(c.Challenger)).
		Int(int(c.Challenged)).
		Bytes(c.Nonce).
		Encoding()
}

// slowSignPayload is the original Challenge.SignPayload.
func slowSignPayload(c Challenge) []byte {
	return sig.NewEncoder().
		String(challengeTag).
		Int(int(c.Challenger)).
		Int(int(c.Challenged)).
		Bytes(c.Nonce).
		Encoding()
}

// slowMarshalResponse is the original Response.Marshal.
func slowMarshalResponse(r Response) []byte {
	return sig.NewEncoder().
		Int(int(r.Challenge.Challenger)).
		Int(int(r.Challenge.Challenged)).
		Bytes(r.Challenge.Nonce).
		Bytes(r.Signature).
		Encoding()
}

// randomChallenge draws a challenge with adversarial field shapes: odd
// nonce sizes (including empty and oversized) and out-of-range IDs.
func randomChallenge(rng *rand.Rand) Challenge {
	nonce := make([]byte, rng.Intn(64))
	rng.Read(nonce)
	if rng.Intn(8) == 0 {
		nonce = nil
	}
	return Challenge{
		Challenger: model.NodeID(rng.Intn(1024) - 512),
		Challenged: model.NodeID(rng.Intn(1024) - 512),
		Nonce:      nonce,
	}
}

func TestChallengeMarshalMatchesSlowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		c := randomChallenge(rng)
		want := slowMarshalChallenge(c)
		if got := c.Marshal(); !bytes.Equal(got, want) {
			t.Fatalf("Marshal diverged from oracle for %+v:\n got %x\nwant %x", c, got, want)
		}
		if got := c.MarshalTo(nil); !bytes.Equal(got, want) {
			t.Fatalf("MarshalTo(nil) diverged from oracle for %+v", c)
		}
		// MarshalTo must append, not overwrite.
		prefix := []byte("prefix")
		got := c.MarshalTo(append([]byte(nil), prefix...))
		if !bytes.Equal(got[:len(prefix)], prefix) || !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("MarshalTo clobbered the destination prefix")
		}
		if c.MarshalSize() != len(want) {
			t.Fatalf("MarshalSize = %d, wire is %d bytes", c.MarshalSize(), len(want))
		}
	}
}

func TestSignPayloadMatchesSlowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		c := randomChallenge(rng)
		want := slowSignPayload(c)
		if got := c.SignPayload(); !bytes.Equal(got, want) {
			t.Fatalf("SignPayload diverged from oracle for %+v", c)
		}
		if got := c.AppendSignPayload(nil); !bytes.Equal(got, want) {
			t.Fatalf("AppendSignPayload diverged from oracle for %+v", c)
		}
		if c.SignPayloadSize() != len(want) {
			t.Fatalf("SignPayloadSize = %d, payload is %d bytes", c.SignPayloadSize(), len(want))
		}
	}
}

func TestResponseMarshalMatchesSlowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		sigBytes := make([]byte, rng.Intn(128))
		rng.Read(sigBytes)
		r := Response{Challenge: randomChallenge(rng), Signature: sigBytes}
		want := slowMarshalResponse(r)
		if got := r.Marshal(); !bytes.Equal(got, want) {
			t.Fatalf("Marshal diverged from oracle for %+v", r)
		}
		if got := r.MarshalTo(nil); !bytes.Equal(got, want) {
			t.Fatalf("MarshalTo diverged from oracle for %+v", r)
		}
		if r.MarshalSize() != len(want) {
			t.Fatalf("MarshalSize = %d, wire is %d bytes", r.MarshalSize(), len(want))
		}
	}
}

// TestUnmarshalRejectsTrailingBytesEarly pins the PR 3 decode fix: a
// frame with trailing garbage must be rejected — and rejected before any
// field copying happens (no allocation on the failure path, checked by
// the perf pins; here we check the error surface is uniform).
func TestUnmarshalRejectsTrailingBytesEarly(t *testing.T) {
	ch := Challenge{Challenger: 0, Challenged: 1, Nonce: bytes.Repeat([]byte{7}, NonceSize)}
	for _, extra := range [][]byte{{0}, {1, 2, 3}, bytes.Repeat([]byte{9}, 64)} {
		if _, err := UnmarshalChallenge(append(ch.Marshal(), extra...)); err == nil {
			t.Fatalf("UnmarshalChallenge accepted %d trailing bytes", len(extra))
		}
		r := Response{Challenge: ch, Signature: []byte("sig")}
		if _, err := UnmarshalResponse(append(r.Marshal(), extra...)); err == nil {
			t.Fatalf("UnmarshalResponse accepted %d trailing bytes", len(extra))
		}
	}
	// Truncated frames fail too, with the typed errors.
	wire := ch.Marshal()
	for cut := 0; cut < len(wire); cut++ {
		if _, err := UnmarshalChallenge(wire[:cut]); err == nil {
			t.Fatalf("UnmarshalChallenge accepted a %d/%d-byte truncation", cut, len(wire))
		}
	}
}

// TestParseRejectsOffWidthNonces pins the nonce bound: no correct node
// issues anything but a NonceSize nonce, so a structurally valid frame
// carrying an oversized (or undersized) nonce must be rejected at parse
// time — before it can be signed or sized into the pooled scratch.
func TestParseRejectsOffWidthNonces(t *testing.T) {
	for _, width := range []int{0, 1, NonceSize - 1, NonceSize + 1, 1 << 20} {
		ch := Challenge{Challenger: 0, Challenged: 1, Nonce: bytes.Repeat([]byte{3}, width)}
		if _, err := ParseChallenge(ch.Marshal()); err == nil {
			t.Errorf("ParseChallenge accepted a %d-byte nonce", width)
		}
		r := Response{Challenge: ch, Signature: []byte("sig")}
		if _, err := ParseResponse(r.Marshal()); err == nil {
			t.Errorf("ParseResponse accepted a %d-byte nonce", width)
		}
	}
	ok := Challenge{Challenger: 0, Challenged: 1, Nonce: bytes.Repeat([]byte{3}, NonceSize)}
	if _, err := ParseChallenge(ok.Marshal()); err != nil {
		t.Errorf("ParseChallenge rejected a NonceSize nonce: %v", err)
	}
}

// TestParseAliasesUnmarshalCopies pins the ownership contracts of the
// two decode variants.
func TestParseAliasesUnmarshalCopies(t *testing.T) {
	ch := Challenge{Challenger: 2, Challenged: 3, Nonce: bytes.Repeat([]byte{5}, NonceSize)}
	wire := ch.Marshal()

	aliased, err := ParseChallenge(wire)
	if err != nil {
		t.Fatalf("ParseChallenge: %v", err)
	}
	owned, err := UnmarshalChallenge(wire)
	if err != nil {
		t.Fatalf("UnmarshalChallenge: %v", err)
	}
	wire[len(wire)-1] ^= 0xFF // mutate the buffer under both
	if aliased.Nonce[len(aliased.Nonce)-1] == 5 {
		t.Error("ParseChallenge copied the nonce; it must alias")
	}
	if owned.Nonce[len(owned.Nonce)-1] != 5 {
		t.Error("UnmarshalChallenge aliased the nonce; it must copy")
	}

	r := Response{Challenge: ch, Signature: []byte("signature")}
	rwire := r.Marshal()
	rowned, err := UnmarshalResponse(rwire)
	if err != nil {
		t.Fatalf("UnmarshalResponse: %v", err)
	}
	for i := range rwire {
		rwire[i] = 0
	}
	if !bytes.Equal(rowned.Challenge.Nonce, ch.Nonce) || !bytes.Equal(rowned.Signature, r.Signature) {
		t.Error("UnmarshalResponse fields alias the wire buffer; they must be owned copies")
	}
	// The arena layout must not let one field grow into the other.
	rowned.Challenge.Nonce = append(rowned.Challenge.Nonce, 0xAA)
	if !bytes.Equal(rowned.Signature, r.Signature) {
		t.Error("appending to the nonce overwrote the signature arena")
	}
}
