package keydist

import (
	"testing"

	"repro/internal/sig"
	"repro/internal/sim"
)

// Allocation pins for the PR 3 zero-alloc handshake hot path. The
// pre-PR-3 round trip cost 23 allocs/op (toy) and 21 allocs/op
// (ed25519); the pins below hold the ≥4x reduction. Skipped under -race
// (instrumentation inflates counts), like every AllocsPerRun pin in the
// repository.

// roundTrip exercises the full challenge→respond→verify exchange the way
// the protocol nodes do: the challenger's wire encode, the challenged
// node's aliasing parse + pooled-payload signing + response encode, and
// the challenger's aliasing parse + echo check + pooled-payload verify.
// Wire buffers are reused across calls, as the engine's reused inboxes
// allow.
func roundTrip(issued Challenge, signer sig.Signer, pred sig.TestPredicate, chalWire, respWire []byte) ([]byte, []byte, error) {
	chalWire = issued.MarshalTo(chalWire[:0])
	ch, err := ParseChallenge(chalWire)
	if err != nil {
		return chalWire, respWire, err
	}
	resp, err := Respond(ch, signer)
	if err != nil {
		return chalWire, respWire, err
	}
	respWire = resp.MarshalTo(respWire[:0])
	echoed, err := ParseResponse(respWire)
	if err != nil {
		return chalWire, respWire, err
	}
	return chalWire, respWire, VerifyResponse(issued, echoed, pred)
}

func handshakeFixture(tb testing.TB, schemeName string) (Challenge, sig.Signer, sig.TestPredicate) {
	tb.Helper()
	scheme, err := sig.ByName(schemeName)
	if err != nil {
		tb.Fatal(err)
	}
	signer, err := scheme.Generate(sim.SeededReader(1))
	if err != nil {
		tb.Fatal(err)
	}
	issued, err := NewChallenge(0, 1, sim.SeededReader(2))
	if err != nil {
		tb.Fatal(err)
	}
	return issued, signer, signer.Predicate()
}

func TestHandshakeRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	for _, tc := range []struct {
		scheme string
		// max allocs/op for the full round trip; the scheme's own Sign
		// and Test dominate what remains.
		max float64
	}{
		{sig.SchemeToy, 5},
		{sig.SchemeEd25519, 5},
	} {
		t.Run(tc.scheme, func(t *testing.T) {
			issued, signer, pred := handshakeFixture(t, tc.scheme)
			chalWire := make([]byte, 0, issued.MarshalSize())
			respWire := make([]byte, 0, 256)
			var err error
			allocs := testing.AllocsPerRun(200, func() {
				chalWire, respWire, err = roundTrip(issued, signer, pred, chalWire, respWire)
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs > tc.max {
				t.Errorf("round trip costs %.1f allocs/op, pin is %.0f (was 23 pre-PR-3)", allocs, tc.max)
			}
		})
	}
}

// TestWireCodecAllocs pins the codec paths in isolation: encoding into a
// reused buffer and the aliasing parses are allocation-free, and the
// malformed-input paths pay only for constructing the wrapped error —
// never for a field arena, because frames are fully validated before any
// copying.
func TestWireCodecAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	issued, signer, _ := handshakeFixture(t, sig.SchemeToy)
	resp, err := Respond(issued, signer)
	if err != nil {
		t.Fatal(err)
	}
	chalWire := issued.Marshal()
	respWire := resp.Marshal()
	trailing := append(append([]byte(nil), chalWire...), 0xEE)
	buf := make([]byte, 0, 512)

	for _, tc := range []struct {
		name string
		// max allocs/op: 0 for the hot paths, 4 for the reject paths
		// (fmt.Errorf wrapping; no field copies).
		max float64
		fn  func()
	}{
		{"challenge MarshalTo", 0, func() { buf = issued.MarshalTo(buf[:0]) }},
		{"response MarshalTo", 0, func() { buf = resp.MarshalTo(buf[:0]) }},
		{"ParseChallenge", 0, func() { _, _ = ParseChallenge(chalWire) }},
		{"ParseResponse", 0, func() { _, _ = ParseResponse(respWire) }},
		{"AppendSignPayload", 0, func() { buf = issued.AppendSignPayload(buf[:0]) }},
		{"reject trailing", 4, func() { _, _ = UnmarshalChallenge(trailing) }},
		{"reject truncated", 4, func() { _, _ = UnmarshalResponse(respWire[:3]) }},
	} {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs > tc.max {
			t.Errorf("%s costs %.1f allocs/op, want <= %.0f", tc.name, allocs, tc.max)
		}
	}
}

func BenchmarkHandshakeRoundTrip(b *testing.B) {
	for _, scheme := range []string{sig.SchemeToy, sig.SchemeEd25519} {
		b.Run(scheme, func(b *testing.B) {
			issued, signer, pred := handshakeFixture(b, scheme)
			chalWire := make([]byte, 0, issued.MarshalSize())
			respWire := make([]byte, 0, 256)
			var err error
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				chalWire, respWire, err = roundTrip(issued, signer, pred, chalWire, respWire)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
