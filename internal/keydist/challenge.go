package keydist

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/sig"
)

// Wire formats and signing payloads for the challenge/response exchange.
//
// The challenge {P_i, P_j, r} names BOTH parties. This is the load-bearing
// detail of the protocol: a challenged node signs a challenge if and only
// if it names the node itself and the actual challenger, so a faulty node
// cannot relay a correct node's challenge to another correct node and
// harvest a signature that would let it claim that node's key (the attack
// Theorem 2's G1 proof rules out).

// NonceSize is the challenge nonce width in bytes. 16 bytes makes nonce
// collisions (and hence replayed responses) vanishingly unlikely while
// keeping challenge messages small; experiment E10 ablates this.
const NonceSize = 16

// challengeTag domain-separates challenge-response signatures from every
// other signed statement in the system, so a harvested response can never
// double as, say, a chain-signature layer.
const challengeTag = "keydist/challenge/v1"

// Errors returned by response verification.
var (
	// ErrBadChallenge reports a malformed challenge payload.
	ErrBadChallenge = errors.New("keydist: malformed challenge")
	// ErrBadResponse reports a malformed response payload.
	ErrBadResponse = errors.New("keydist: malformed response")
	// ErrWrongNames reports a challenge or response naming the wrong nodes.
	ErrWrongNames = errors.New("keydist: challenge names do not match parties")
	// ErrWrongNonce reports a response echoing a nonce that was never issued.
	ErrWrongNonce = errors.New("keydist: response nonce does not match challenge")
	// ErrBadSignature reports a response signature that fails the pending
	// test predicate.
	ErrBadSignature = errors.New("keydist: response signature failed test predicate")
)

// Challenge is the plaintext {P_i, P_j, r}: challenger P_i asks P_j to
// prove it holds the secret key for the predicate it distributed.
type Challenge struct {
	Challenger model.NodeID
	Challenged model.NodeID
	Nonce      []byte
}

// NewChallenge draws a fresh nonce from rand and builds the challenge.
func NewChallenge(challenger, challenged model.NodeID, rand io.Reader) (Challenge, error) {
	nonce := make([]byte, NonceSize)
	if _, err := io.ReadFull(rand, nonce); err != nil {
		return Challenge{}, fmt.Errorf("keydist: draw nonce: %w", err)
	}
	return Challenge{Challenger: challenger, Challenged: challenged, Nonce: nonce}, nil
}

// Marshal encodes the challenge for the wire.
func (c Challenge) Marshal() []byte {
	return sig.NewEncoder().
		Int(int(c.Challenger)).
		Int(int(c.Challenged)).
		Bytes(c.Nonce).
		Encoding()
}

// UnmarshalChallenge decodes a wire challenge.
func UnmarshalChallenge(data []byte) (Challenge, error) {
	d := sig.NewDecoder(data)
	c := Challenge{
		Challenger: model.NodeID(d.Int()),
		Challenged: model.NodeID(d.Int()),
	}
	c.Nonce = append([]byte(nil), d.Bytes()...)
	if err := d.Finish(); err != nil {
		return Challenge{}, fmt.Errorf("%w: %v", ErrBadChallenge, err)
	}
	return c, nil
}

// SignPayload is the byte string the challenged node signs: the
// domain-separation tag plus both names and the nonce.
func (c Challenge) SignPayload() []byte {
	return sig.NewEncoder().
		String(challengeTag).
		Int(int(c.Challenger)).
		Int(int(c.Challenged)).
		Bytes(c.Nonce).
		Encoding()
}

// Response is the signed challenge {P_i, P_j, r}_{S_j} sent back to the
// challenger, carried with its plaintext fields so the challenger can
// check the echo before testing the signature.
type Response struct {
	Challenge Challenge
	Signature []byte
}

// Respond produces the response a correct node sends for a challenge it
// has already screened with ShouldSign.
func Respond(c Challenge, signer sig.Signer) (Response, error) {
	s, err := signer.Sign(c.SignPayload())
	if err != nil {
		return Response{}, fmt.Errorf("keydist: sign challenge: %w", err)
	}
	return Response{Challenge: c, Signature: s}, nil
}

// ShouldSign implements the correct node's screening rule: sign the
// challenge if and only if it names the node itself as the challenged
// party and the actual immediate sender as the challenger.
func ShouldSign(c Challenge, self, immediateSender model.NodeID) bool {
	return c.Challenged == self && c.Challenger == immediateSender
}

// Marshal encodes the response for the wire.
func (r Response) Marshal() []byte {
	return sig.NewEncoder().
		Int(int(r.Challenge.Challenger)).
		Int(int(r.Challenge.Challenged)).
		Bytes(r.Challenge.Nonce).
		Bytes(r.Signature).
		Encoding()
}

// UnmarshalResponse decodes a wire response.
func UnmarshalResponse(data []byte) (Response, error) {
	d := sig.NewDecoder(data)
	r := Response{
		Challenge: Challenge{
			Challenger: model.NodeID(d.Int()),
			Challenged: model.NodeID(d.Int()),
		},
	}
	r.Challenge.Nonce = append([]byte(nil), d.Bytes()...)
	r.Signature = append([]byte(nil), d.Bytes()...)
	if err := d.Finish(); err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	return r, nil
}

// VerifyResponse applies the paper's acceptance rule: the response must
// echo the exact challenge the verifier issued (both names, same nonce)
// and its signature must pass the pending test predicate. On success the
// caller accepts the predicate as belonging to the challenged node.
func VerifyResponse(issued Challenge, r Response, pred sig.TestPredicate) error {
	if r.Challenge.Challenger != issued.Challenger || r.Challenge.Challenged != issued.Challenged {
		return fmt.Errorf("%w: got (%v,%v), issued (%v,%v)", ErrWrongNames,
			r.Challenge.Challenger, r.Challenge.Challenged,
			issued.Challenger, issued.Challenged)
	}
	if string(r.Challenge.Nonce) != string(issued.Nonce) {
		return ErrWrongNonce
	}
	if !pred.Test(issued.SignPayload(), r.Signature) {
		return ErrBadSignature
	}
	return nil
}
