package keydist

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/model"
	"repro/internal/sig"
)

// Wire formats and signing payloads for the challenge/response exchange.
//
// The challenge {P_i, P_j, r} names BOTH parties. This is the load-bearing
// detail of the protocol: a challenged node signs a challenge if and only
// if it names the node itself and the actual challenger, so a faulty node
// cannot relay a correct node's challenge to another correct node and
// harvest a signature that would let it claim that node's key (the attack
// Theorem 2's G1 proof rules out).

// NonceSize is the challenge nonce width in bytes. 16 bytes makes nonce
// collisions (and hence replayed responses) vanishingly unlikely while
// keeping challenge messages small; experiment E10 ablates this.
const NonceSize = 16

// challengeTag domain-separates challenge-response signatures from every
// other signed statement in the system, so a harvested response can never
// double as, say, a chain-signature layer.
const challengeTag = "keydist/challenge/v1"

// Errors returned by response verification.
var (
	// ErrBadChallenge reports a malformed challenge payload.
	ErrBadChallenge = errors.New("keydist: malformed challenge")
	// ErrBadResponse reports a malformed response payload.
	ErrBadResponse = errors.New("keydist: malformed response")
	// ErrWrongNames reports a challenge or response naming the wrong nodes.
	ErrWrongNames = errors.New("keydist: challenge names do not match parties")
	// ErrWrongNonce reports a response echoing a nonce that was never issued.
	ErrWrongNonce = errors.New("keydist: response nonce does not match challenge")
	// ErrBadSignature reports a response signature that fails the pending
	// test predicate.
	ErrBadSignature = errors.New("keydist: response signature failed test predicate")
)

// Challenge is the plaintext {P_i, P_j, r}: challenger P_i asks P_j to
// prove it holds the secret key for the predicate it distributed.
type Challenge struct {
	Challenger model.NodeID
	Challenged model.NodeID
	Nonce      []byte
}

// NewChallenge draws a fresh nonce from rand and builds the challenge.
func NewChallenge(challenger, challenged model.NodeID, rand io.Reader) (Challenge, error) {
	nonce := make([]byte, NonceSize)
	if _, err := io.ReadFull(rand, nonce); err != nil {
		return Challenge{}, fmt.Errorf("keydist: draw nonce: %w", err)
	}
	return Challenge{Challenger: challenger, Challenged: challenged, Nonce: nonce}, nil
}

// MarshalSize returns the exact wire size of the challenge, so MarshalTo
// callers can presize the destination buffer.
func (c Challenge) MarshalSize() int {
	return 2*sig.IntFieldSize + sig.BytesFieldSize(len(c.Nonce))
}

// MarshalTo appends the wire encoding to dst and returns the extended
// slice — the zero-allocation path for callers that reuse a buffer.
func (c Challenge) MarshalTo(dst []byte) []byte {
	dst = sig.AppendInt(dst, int(c.Challenger))
	dst = sig.AppendInt(dst, int(c.Challenged))
	return sig.AppendBytes(dst, c.Nonce)
}

// Marshal encodes the challenge for the wire in a single exactly-sized
// allocation.
func (c Challenge) Marshal() []byte {
	return c.MarshalTo(make([]byte, 0, c.MarshalSize()))
}

// ParseChallenge decodes a wire challenge without copying: the returned
// challenge's Nonce aliases data. It is the hot-path decoder for callers
// (the protocol nodes) that consume the challenge before the underlying
// buffer is reused; callers that retain the challenge must use
// UnmarshalChallenge. The whole frame is validated — including trailing
// garbage and the nonce width — before any field is returned: no correct
// node ever issues a nonce that is not NonceSize bytes, so an off-width
// nonce is rejected here instead of being signed (and sizing the pooled
// sign-payload scratch to attacker-chosen lengths).
func ParseChallenge(data []byte) (Challenge, error) {
	d := sig.NewDecoder(data)
	challenger := model.NodeID(d.Int())
	challenged := model.NodeID(d.Int())
	nonce := d.Bytes()
	if err := d.Finish(); err != nil {
		return Challenge{}, fmt.Errorf("%w: %v", ErrBadChallenge, err)
	}
	if len(nonce) != NonceSize {
		return Challenge{}, fmt.Errorf("%w: nonce is %d bytes, want %d", ErrBadChallenge, len(nonce), NonceSize)
	}
	return Challenge{Challenger: challenger, Challenged: challenged, Nonce: nonce}, nil
}

// UnmarshalChallenge decodes a wire challenge into owned storage. The
// frame is fully validated before the nonce is copied, so malformed or
// trailing-garbage input costs no allocation.
func UnmarshalChallenge(data []byte) (Challenge, error) {
	c, err := ParseChallenge(data)
	if err != nil {
		return Challenge{}, err
	}
	c.Nonce = append([]byte(nil), c.Nonce...)
	return c, nil
}

// SignPayloadSize returns the exact size of the signed byte string.
func (c Challenge) SignPayloadSize() int {
	return sig.BytesFieldSize(len(challengeTag)) + 2*sig.IntFieldSize + sig.BytesFieldSize(len(c.Nonce))
}

// AppendSignPayload appends the byte string the challenged node signs —
// the domain-separation tag plus both names and the nonce — to dst and
// returns the extended slice.
func (c Challenge) AppendSignPayload(dst []byte) []byte {
	dst = sig.AppendString(dst, challengeTag)
	dst = sig.AppendInt(dst, int(c.Challenger))
	dst = sig.AppendInt(dst, int(c.Challenged))
	return sig.AppendBytes(dst, c.Nonce)
}

// SignPayload is the byte string the challenged node signs, in a fresh
// exactly-sized allocation. Hot paths use AppendSignPayload with the
// pooled scratch instead.
func (c Challenge) SignPayload() []byte {
	return c.AppendSignPayload(make([]byte, 0, c.SignPayloadSize()))
}

// payloadPool recycles sign-payload scratch buffers across Respond and
// VerifyResponse calls, so building the signed byte string allocates
// nothing on the hot path. Payloads are handed to Sign/Test and never
// retained (the sig schemes hash or copy them), so returning the buffer
// immediately afterwards is safe.
var payloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, sig.BytesFieldSize(len(challengeTag))+2*sig.IntFieldSize+sig.BytesFieldSize(NonceSize))
	return &b
}}

// Response is the signed challenge {P_i, P_j, r}_{S_j} sent back to the
// challenger, carried with its plaintext fields so the challenger can
// check the echo before testing the signature.
type Response struct {
	Challenge Challenge
	Signature []byte
}

// Respond produces the response a correct node sends for a challenge it
// has already screened with ShouldSign.
func Respond(c Challenge, signer sig.Signer) (Response, error) {
	bp := payloadPool.Get().(*[]byte)
	payload := c.AppendSignPayload((*bp)[:0])
	s, err := signer.Sign(payload)
	*bp = payload[:0]
	payloadPool.Put(bp)
	if err != nil {
		return Response{}, fmt.Errorf("keydist: sign challenge: %w", err)
	}
	return Response{Challenge: c, Signature: s}, nil
}

// ShouldSign implements the correct node's screening rule: sign the
// challenge if and only if it names the node itself as the challenged
// party and the actual immediate sender as the challenger.
func ShouldSign(c Challenge, self, immediateSender model.NodeID) bool {
	return c.Challenged == self && c.Challenger == immediateSender
}

// MarshalSize returns the exact wire size of the response.
func (r Response) MarshalSize() int {
	return r.Challenge.MarshalSize() + sig.BytesFieldSize(len(r.Signature))
}

// MarshalTo appends the wire encoding to dst and returns the extended
// slice.
func (r Response) MarshalTo(dst []byte) []byte {
	dst = r.Challenge.MarshalTo(dst)
	return sig.AppendBytes(dst, r.Signature)
}

// Marshal encodes the response for the wire in a single exactly-sized
// allocation.
func (r Response) Marshal() []byte {
	return r.MarshalTo(make([]byte, 0, r.MarshalSize()))
}

// ParseResponse decodes a wire response without copying: the returned
// response's Nonce and Signature alias data. See ParseChallenge for the
// aliasing contract; UnmarshalResponse is the owning variant.
func ParseResponse(data []byte) (Response, error) {
	d := sig.NewDecoder(data)
	r := Response{
		Challenge: Challenge{
			Challenger: model.NodeID(d.Int()),
			Challenged: model.NodeID(d.Int()),
		},
	}
	nonce := d.Bytes()
	signature := d.Bytes()
	if err := d.Finish(); err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	if len(nonce) != NonceSize {
		return Response{}, fmt.Errorf("%w: nonce is %d bytes, want %d", ErrBadResponse, len(nonce), NonceSize)
	}
	r.Challenge.Nonce = nonce
	r.Signature = signature
	return r, nil
}

// UnmarshalResponse decodes a wire response into owned storage. The frame
// is fully validated before any copying, and both variable-length fields
// are copied out of one arena allocation.
func UnmarshalResponse(data []byte) (Response, error) {
	r, err := ParseResponse(data)
	if err != nil {
		return Response{}, err
	}
	arena := make([]byte, 0, len(r.Challenge.Nonce)+len(r.Signature))
	arena = append(arena, r.Challenge.Nonce...)
	arena = append(arena, r.Signature...)
	// Full slice expressions pin the capacity of each field to its length,
	// so a later append to one cannot silently overwrite the other.
	n := len(r.Challenge.Nonce)
	r.Challenge.Nonce = arena[:n:n]
	r.Signature = arena[n:len(arena):len(arena)]
	return r, nil
}

// VerifyResponse applies the paper's acceptance rule: the response must
// echo the exact challenge the verifier issued (both names, same nonce)
// and its signature must pass the pending test predicate. On success the
// caller accepts the predicate as belonging to the challenged node.
func VerifyResponse(issued Challenge, r Response, pred sig.TestPredicate) error {
	if r.Challenge.Challenger != issued.Challenger || r.Challenge.Challenged != issued.Challenged {
		return fmt.Errorf("%w: got (%v,%v), issued (%v,%v)", ErrWrongNames,
			r.Challenge.Challenger, r.Challenge.Challenged,
			issued.Challenger, issued.Challenged)
	}
	if string(r.Challenge.Nonce) != string(issued.Nonce) {
		return ErrWrongNonce
	}
	bp := payloadPool.Get().(*[]byte)
	payload := issued.AppendSignPayload((*bp)[:0])
	ok := pred.Test(payload, r.Signature)
	*bp = payload[:0]
	payloadPool.Put(bp)
	if !ok {
		return ErrBadSignature
	}
	return nil
}
