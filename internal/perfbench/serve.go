package perfbench

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/sig"
	"repro/internal/transport"
)

// ServeSustained measures the agreement service under sustained
// concurrent load: an in-memory fdserve daemon, `clients` connections
// split across two tenants, each submitting `perClient` requests
// back-to-back against one warm (protocol, scheme, n, t, keySeed) cell.
// Beyond the usual ns/op it reports the service-level numbers the
// BENCH trajectory tracks from PR 10 on — per-request p50/p99 latency
// and aggregate throughput — via ReportMetric, which fdbench copies
// into the suite's p50_ns/p99_ns/ops_per_sec columns. Every reply is
// verified conformant, so the benchmark cannot keep timing a daemon
// that serves garbage quickly.
func ServeSustained(protocol string, n, t, clients, perClient int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var lastP50, lastP99 float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv := service.NewServer(service.Config{Shards: 4})
			acc := transport.NewPipeAcceptor()
			go srv.Serve(acc)

			var latencies metrics.Series
			var mu sync.Mutex
			var wg sync.WaitGroup
			start := make(chan struct{})
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				conn, err := acc.Dial()
				if err != nil {
					b.Fatal(err)
				}
				cl, err := service.NewClient(conn, fmt.Sprintf("tenant-%d", c%2))
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func(c int, cl *service.Client) {
					defer wg.Done()
					defer cl.Close()
					<-start
					for r := 0; r < perClient; r++ {
						reply, err := cl.Do(service.Request{
							Protocol: protocol, N: n, T: t, Scheme: sig.SchemeEd25519,
							Seed: int64(c*perClient + r + 1), KeySeed: 1,
						})
						if err != nil {
							errs <- err
							return
						}
						if reply.Result.Err != "" || !reply.Result.Conformance.Conformant() {
							errs <- fmt.Errorf("non-conformant reply: %+v", reply.Result)
							return
						}
						mu.Lock()
						latencies.Add(float64(reply.QueueNS + reply.RunNS))
						mu.Unlock()
					}
				}(c, cl)
			}

			b.StartTimer()
			close(start)
			wg.Wait()
			b.StopTimer()

			srv.Drain()
			acc.Close()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
			dist := latencies.Dist()
			if dist.Count != clients*perClient {
				b.Fatalf("recorded %d latencies, want %d", dist.Count, clients*perClient)
			}
			// Iterations run identical workloads; the last one's
			// percentiles stand for the run.
			lastP50, lastP99 = dist.P50, dist.P99
			b.StartTimer()
		}
		b.StopTimer()
		b.ReportMetric(lastP50, "p50-ns")
		b.ReportMetric(lastP99, "p99-ns")
		// Elapsed covers only the timed serve windows across all
		// iterations.
		b.ReportMetric(float64(b.N*clients*perClient)/b.Elapsed().Seconds(), "inst/sec")
	}
}

// ServeChainSustained is ServeSustained over the chain protocol — the
// service-level row name the BENCH trajectory carries from PR 10 on.
func ServeChainSustained(n, t, clients, perClient int) func(b *testing.B) {
	return ServeSustained(campaign.ProtoChain, n, t, clients, perClient)
}

// ServeFDBASustained is ServeSustained over the FDBA agreement
// extension: same warm cell shape, heavier 2t+6-round runs.
func ServeFDBASustained(n, t, clients, perClient int) func(b *testing.B) {
	return ServeSustained(campaign.ProtoFDBA, n, t, clients, perClient)
}
