// Package perfbench holds the repository's headline hot-path benchmark
// bodies. The root bench_test.go targets and the `fdbench -perf` JSON
// suite both run these same closures, so the numbers in a PR description
// (`go test -bench`) and the BENCH_<pr>.json trajectory can never
// silently measure different workloads.
package perfbench

import (
	"bytes"
	"context"
	"crypto/rand"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/ba"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/keydist"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/transport"
)

// mustChain builds a hops-layer Ed25519 chain, the directory verifying
// it, and one spare signer for extension benchmarks.
func mustChain(b *testing.B, hops int) (*sig.Chain, sig.MapDirectory, []sig.Signer) {
	b.Helper()
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		b.Fatal(err)
	}
	dir := make(sig.MapDirectory)
	signers := make([]sig.Signer, hops+1)
	for i := range signers {
		s, err := scheme.Generate(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		signers[i] = s
		dir[model.NodeID(i)] = s.Predicate()
	}
	chain, err := sig.NewChain([]byte("value"), signers[0])
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i < hops; i++ {
		chain, err = chain.Extend(model.NodeID(i-1), signers[i])
		if err != nil {
			b.Fatal(err)
		}
	}
	return chain, dir, signers
}

// ChainVerify measures full chain verification at the given length.
// cold resets the verified-signature memo every iteration (the first
// receiver's cost: every layer pays a public-key verification); warm
// leaves it in place (every re-verification of a chain the process has
// already seen).
func ChainVerify(hops int, cold bool) func(b *testing.B) {
	return func(b *testing.B) {
		chain, dir, _ := mustChain(b, hops)
		b.ReportMetric(float64(len(chain.Marshal())), "wire-bytes")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cold {
				b.StopTimer()
				sig.ResetVerifyMemo()
				b.StartTimer()
			}
			if _, err := chain.Verify(model.NodeID(hops-1), dir); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ChainExtend measures one chain extension (sign + derive the next
// nested encoding) at the given chain length.
func ChainExtend(hops int) func(b *testing.B) {
	return func(b *testing.B) {
		chain, _, signers := mustChain(b, hops)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := chain.Extend(model.NodeID(hops-1), signers[hops]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// EIG measures a full failure-free OM(t) agreement: path-keyed tree
// ingestion, relaying, and the bottom-up resolve, across all n nodes.
// Every iteration asserts that all nodes decided the sender's value, so
// the benchmark cannot keep timing a silently broken agreement.
func EIG(n, t int) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := model.Config{N: n, T: t}
		value := []byte("v")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			entries := new(atomic.Int64)
			nodes := make([]*ba.EIGNode, cfg.N)
			procs := make([]sim.Process, cfg.N)
			for j := 0; j < cfg.N; j++ {
				opts := []ba.EIGOption{ba.WithEntryCounter(entries)}
				if model.NodeID(j) == ba.Sender {
					opts = append(opts, ba.WithEIGValue(value))
				}
				node, err := ba.NewEIGNode(cfg, model.NodeID(j), opts...)
				if err != nil {
					b.Fatal(err)
				}
				nodes[j] = node
				procs[j] = node
			}
			eng, err := sim.New(cfg, procs)
			if err != nil {
				b.Fatal(err)
			}
			eng.Run(ba.EIGEngineRounds(cfg.T))
			for j, node := range nodes {
				if d := node.Decision(); !bytes.Equal(d.Value, value) {
					b.Fatalf("node %d decided %q, want %q", j, d.Value, value)
				}
			}
		}
	}
}

// FDRun measures one authenticated failure-discovery run on an
// established cluster. The value varies per iteration: real runs carry
// fresh values, so a fixed value would let every iteration after the
// first ride the verified-signature memo and the benchmark would stop
// measuring verification at all. Within one run, receivers re-verifying
// layers an earlier hop verified DO hit the memo — the simulator's nodes
// share a process, as they do in every sim-backed deployment here; a
// cluster of separate OS processes would pay more.
func FDRun(n, t int) func(b *testing.B) {
	return func(b *testing.B) {
		c, err := core.New(model.Config{N: n, T: t}, core.WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.EstablishAuthentication(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunFailureDiscovery([]byte(fmt.Sprintf("value-%d", i))); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// KeydistHandshake measures the full local-authentication setup — n key
// generations plus the 3n(n−1)-message challenge/response handshake —
// that Cluster.Reset and the campaign setup cache amortize away. Every
// iteration builds a fresh cluster (an established one cannot establish
// again), so this is exactly the per-run cost the uncached path pays.
func KeydistHandshake(n, t int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := core.New(model.Config{N: n, T: t}, core.WithSeed(1), core.WithKeySeed(1))
			if err != nil {
				b.Fatal(err)
			}
			rep, err := c.EstablishAuthentication()
			if err != nil {
				b.Fatal(err)
			}
			if got, want := rep.Snapshot.Messages, keydist.ExpectedMessages(n); got != want {
				b.Fatalf("handshake sent %d messages, want %d", got, want)
			}
		}
	}
}

// HandshakeRoundTrip measures one challenge→respond→verify exchange on
// the zero-alloc codec path: encode into reused buffers, aliasing
// parses, pooled sign-payload scratch. This is the per-peer unit the
// handshake executes n(n−1) times.
func HandshakeRoundTrip(schemeName string) func(b *testing.B) {
	return func(b *testing.B) {
		scheme, err := sig.ByName(schemeName)
		if err != nil {
			b.Fatal(err)
		}
		signer, err := scheme.Generate(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		pred := signer.Predicate()
		issued, err := keydist.NewChallenge(0, 1, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		chalWire := make([]byte, 0, issued.MarshalSize())
		respWire := make([]byte, 0, 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			chalWire = issued.MarshalTo(chalWire[:0])
			ch, err := keydist.ParseChallenge(chalWire)
			if err != nil {
				b.Fatal(err)
			}
			resp, err := keydist.Respond(ch, signer)
			if err != nil {
				b.Fatal(err)
			}
			respWire = resp.MarshalTo(respWire[:0])
			echoed, err := keydist.ParseResponse(respWire)
			if err != nil {
				b.Fatal(err)
			}
			if err := keydist.VerifyResponse(issued, echoed, pred); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// CampaignSweep measures a one-protocol seed sweep at one fixed
// (scheme, n, t) cell — the paper's many-runs-one-setup workload, for
// any registered protocol driver. warm runs with the per-worker setup
// cache (key material and handshake paid once), cold with per-instance
// fresh setup. Single worker, so the two modes differ only in setup
// reuse; the cached-vs-fresh differential test guarantees both produce
// the same report, so this benchmark measures pure setup overhead.
func CampaignSweep(protocol string, n, t, seeds int, warm bool) func(b *testing.B) {
	return func(b *testing.B) {
		spec := campaign.Spec{
			Name:      "bench-" + protocol + "-sweep",
			Protocols: []string{protocol},
			Cases:     []campaign.Case{{N: n, T: t}},
			SeedBase:  1,
			SeedCount: seeds,
		}
		var opts []campaign.Option
		if !warm {
			opts = append(opts, campaign.WithoutSetupCache())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := campaign.Run(spec, 1, opts...)
			if err != nil {
				b.Fatal(err)
			}
			for _, g := range rep.Groups {
				if g.Errors != 0 {
					b.Fatalf("group %s: %d errored instances", g.Key, g.Errors)
				}
			}
		}
	}
}

// CampaignChainSweep is CampaignSweep over the chain protocol — the
// perf-trajectory row name every BENCH_<pr>.json since PR 3 carries.
func CampaignChainSweep(n, t, seeds int, warm bool) func(b *testing.B) {
	return CampaignSweep(campaign.ProtoChain, n, t, seeds, warm)
}

// CampaignFDBASweep is CampaignSweep over the FDBA agreement protocol:
// the same cluster setup cell as chain (one handshake per sweep when
// warm), but the runs pay the 2t+6-round agreement schedule. Honest
// sweeps exercise the headline failure-free claim — FDBA costs the same
// n−1 messages as chain FD.
func CampaignFDBASweep(n, t, seeds int, warm bool) func(b *testing.B) {
	return CampaignSweep(campaign.ProtoFDBA, n, t, seeds, warm)
}

// SchedChainSweep measures the SAME 100-seed chain sweep as
// CampaignChainSweep(warm), but dispatched through the fault-tolerant
// coordinator/worker scheduler over an in-memory pipe instead of the
// in-process pool: every batch pays lease framing, SHA-256 payload
// checksums, and two JSON round-trips. The delta against
// campaign_chain_sweep_warm in the same BENCH file is therefore the
// scheduler's pure dispatch overhead — the price of crash tolerance
// when nothing crashes.
func SchedChainSweep(n, t, seeds int) func(b *testing.B) {
	return func(b *testing.B) {
		spec := campaign.Spec{
			Name:      "bench-sched-chain-sweep",
			Protocols: []string{campaign.ProtoChain},
			Cases:     []campaign.Case{{N: n, T: t}},
			SeedBase:  1,
			SeedCount: seeds,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := context.Background()
			coord := sched.NewCoordinator(ctx, sched.Config{})
			server, client := transport.Pipe()
			go coord.Attach(server)
			go sched.RunWorker(ctx, client, sched.WorkerConfig{Name: "bench"})
			rep, err := campaign.RunWith(spec, coord)
			if err != nil {
				b.Fatal(err)
			}
			if out := coord.Outcome(); len(out.DLQ) != 0 {
				b.Fatalf("benchmark sweep dead-lettered %d batches", len(out.DLQ))
			}
			for _, g := range rep.Groups {
				if g.Errors != 0 {
					b.Fatalf("group %s: %d errored instances", g.Key, g.Errors)
				}
			}
		}
	}
}
