package service

import (
	"bytes"
	"strings"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	tenant, err := decodeHello(encodeHello("alpha"))
	if err != nil {
		t.Fatalf("decodeHello: %v", err)
	}
	if tenant != "alpha" {
		t.Fatalf("tenant = %q, want alpha", tenant)
	}
	if _, err := decodeHello(encodeHello("")); err == nil {
		t.Fatalf("empty tenant accepted")
	}
	if _, err := decodeHello(encodeHelloAck(4)); err == nil {
		t.Fatalf("hello ack accepted as hello")
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	shards, err := decodeHelloAck(encodeHelloAck(7))
	if err != nil {
		t.Fatalf("decodeHelloAck: %v", err)
	}
	if shards != 7 {
		t.Fatalf("shards = %d, want 7", shards)
	}
}

func TestPayloadFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"protocol":"chain","n":4,"t":1}`)
	frame := encodeSubmit(42, payload)
	if FrameKind(frame) != KindSubmit {
		t.Fatalf("FrameKind = %d, want %d", FrameKind(frame), KindSubmit)
	}
	id, got, err := decodeSubmit(frame)
	if err != nil {
		t.Fatalf("decodeSubmit: %v", err)
	}
	if id != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("decoded (%d, %q), want (42, %q)", id, got, payload)
	}
	if _, _, err := decodeResult(frame); err == nil {
		t.Fatalf("submit frame accepted as result")
	}
}

// A flipped payload byte must fail the checksum, not silently decode —
// the service's whole integrity story over untrusted links.
func TestPayloadChecksumDetectsCorruption(t *testing.T) {
	payload := []byte(`{"result":{"verdict":true}}`)
	frame := encodeResult(7, payload)
	for i := len(frame) - len(payload); i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		if _, _, err := decodeResult(mut); err == nil {
			t.Fatalf("corrupted payload byte %d decoded cleanly", i)
		} else if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "frame") {
			t.Fatalf("unexpected error for byte %d: %v", i, err)
		}
	}
}

func TestRejectRoundTrip(t *testing.T) {
	id, code, retryMS, msg, err := decodeReject(encodeReject(9, RejectBusy, 50, "queue full"))
	if err != nil {
		t.Fatalf("decodeReject: %v", err)
	}
	if id != 9 || code != RejectBusy || retryMS != 50 || msg != "queue full" {
		t.Fatalf("decoded (%d, %q, %d, %q)", id, code, retryMS, msg)
	}
}

func TestStatsReplyRoundTrip(t *testing.T) {
	payload, err := decodeStatsReply(encodeStatsReply([]byte(`{"schema":"fdserve-stats/v1"}`)))
	if err != nil {
		t.Fatalf("decodeStatsReply: %v", err)
	}
	if !bytes.Equal(payload, []byte(`{"schema":"fdserve-stats/v1"}`)) {
		t.Fatalf("payload = %q", payload)
	}
	if FrameKind(encodeStats()) != KindStats {
		t.Fatalf("stats frame kind = %d", FrameKind(encodeStats()))
	}
}
