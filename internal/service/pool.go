package service

import (
	"sync"

	"repro/internal/protocol"
)

// The warm-cluster pool. A long-lived daemon serving a sustained
// request stream must not pay keygen plus the 3n(n−1)-message handshake
// per request — the paper's amortization argument, made a service
// property. The pool keeps idle *protocol.SetupCache values per
// (protocol, scheme, n, t, keySeed) cell: an executor checks one out,
// runs the request through the ordinary driver Prepare path (a warm
// cache Resets its established cluster onto the request's run seed, a
// cold one builds and caches it), and checks it back in. Because key
// material is a pure function of (Scheme, N, KeySeed), a served verdict
// is byte-identical to a one-shot campaign.Run of the same instance —
// the differential test pins that.
//
// Checked-out caches are exclusively owned (SetupCache is single-owner
// by contract); the pool's lock covers only the idle lists, so
// executors never serialize behind each other's runs. Every rekeyEvery
// check-ins of a cell the pool starts a fresh key epoch for that cell
// (SetupCache.Rekey): long-lived in-memory key material is discarded
// and rederived from the same seeds, so hygiene costs no determinism.

// cellKey identifies one warm-pool cell. Protocol rides along even
// though cluster cells are shareable across the cluster-driver family:
// per-protocol cells keep checkout fair under mixed workloads and make
// the /debug/serve cell listing legible.
type cellKey struct {
	Protocol string
	Scheme   string
	N, T     int
	KeySeed  int64
}

// cell is one key's pooled state.
type cell struct {
	idle []*protocol.SetupCache
	runs int64 // lifetime check-ins, drives the rekey interval
}

// pool is the concurrency-safe warm-setup store.
type pool struct {
	mu         sync.Mutex
	idlePerKey int
	rekeyEvery int64
	cells      map[cellKey]*cell

	hits      int64
	misses    int64
	rekeys    int64
	rekeyErrs int64
}

func newPool(idlePerKey, rekeyEvery int) *pool {
	if idlePerKey < 1 {
		idlePerKey = 2
	}
	return &pool{
		idlePerKey: idlePerKey,
		rekeyEvery: int64(rekeyEvery),
		cells:      make(map[cellKey]*cell),
	}
}

// checkout hands the caller an exclusively owned setup cache for the
// cell: a warm idle one when available (hit), a fresh empty one
// otherwise (miss — the first run through it pays setup once and leaves
// it warm for check-in).
func (p *pool) checkout(k cellKey) (sc *protocol.SetupCache, warm bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.cells[k]
	if c != nil && len(c.idle) > 0 {
		sc = c.idle[len(c.idle)-1]
		c.idle = c.idle[:len(c.idle)-1]
		p.hits++
		return sc, true
	}
	p.misses++
	// Small per-cache bound: one cell's setups are (cluster, vector
	// material) at most, and the pool bounds cache count per cell.
	return protocol.NewSetupCache(2), false
}

// checkin returns a checked-out cache to its cell, rekeying it first
// when the cell's check-in count crosses the rekey interval. Returns
// how many clusters were rekeyed (0 outside the interval). A cache that
// fails to rekey, or arrives when the cell's idle list is full, is
// dropped — the next checkout rebuilds from seeds.
func (p *pool) checkin(k cellKey, sc *protocol.SetupCache) (rekeyed int, err error) {
	p.mu.Lock()
	c := p.cells[k]
	if c == nil {
		c = &cell{}
		p.cells[k] = c
	}
	c.runs++
	rekey := p.rekeyEvery > 0 && c.runs%p.rekeyEvery == 0
	p.mu.Unlock()

	if rekey {
		// Re-establishing clusters is expensive; do it outside the pool
		// lock. The cache is still exclusively ours.
		rekeyed, err = sc.Rekey()
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if rekey {
		p.rekeys += int64(rekeyed)
		if err != nil {
			p.rekeyErrs++
			return rekeyed, err
		}
	}
	if len(c.idle) < p.idlePerKey {
		c.idle = append(c.idle, sc)
	}
	return rekeyed, nil
}

// PoolSnapshot is the pool's row in the stats snapshot.
type PoolSnapshot struct {
	// Cells is the number of distinct (protocol, scheme, n, t, keySeed)
	// cells the pool has seen; Idle counts the warm caches parked across
	// them right now.
	Cells int `json:"cells"`
	Idle  int `json:"idle"`
	// Hits and Misses count checkouts that found, respectively missed, a
	// warm cache. RekeyedClusters counts clusters rotated onto a fresh
	// key epoch; RekeyErrors counts caches dropped because re-keying
	// failed.
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	RekeyedClusters int64 `json:"rekeyed_clusters"`
	RekeyErrors     int64 `json:"rekey_errors,omitempty"`
}

func (p *pool) snapshot() PoolSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolSnapshot{
		Cells:           len(p.cells),
		Hits:            p.hits,
		Misses:          p.misses,
		RekeyedClusters: p.rekeys,
		RekeyErrors:     p.rekeyErrs,
	}
	for _, c := range p.cells {
		s.Idle += len(c.idle)
	}
	return s
}
