package service

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/sig"
)

func poolCell() cellKey {
	return cellKey{Protocol: campaign.ProtoChain, Scheme: sig.SchemeToy, N: 4, T: 1, KeySeed: 1}
}

// run pushes one instance through a checked-out cache, warming it.
func poolRun(t *testing.T, p *pool, k cellKey, seed int64) (warm bool) {
	t.Helper()
	sc, warm := p.checkout(k)
	inst := campaign.Instance{
		Protocol: k.Protocol, N: k.N, T: k.T, Scheme: k.Scheme,
		Adversary: campaign.AdvNone, Seed: seed, KeySeed: k.KeySeed,
	}
	res := campaign.RunInstanceWith(inst, sc)
	if res.Err != "" {
		t.Fatalf("run failed: %s", res.Err)
	}
	if _, err := p.checkin(k, sc); err != nil {
		t.Fatalf("checkin: %v", err)
	}
	return warm
}

func TestPoolHitMissAccounting(t *testing.T) {
	p := newPool(2, 0)
	k := poolCell()
	if warm := poolRun(t, p, k, 1); warm {
		t.Fatalf("first checkout reported warm")
	}
	if warm := poolRun(t, p, k, 2); !warm {
		t.Fatalf("second checkout missed after checkin")
	}
	other := k
	other.KeySeed = 99
	if warm := poolRun(t, p, other, 3); warm {
		t.Fatalf("different key seed hit the first cell")
	}
	s := p.snapshot()
	if s.Hits != 1 || s.Misses != 2 || s.Cells != 2 || s.Idle != 2 {
		t.Fatalf("snapshot = %+v, want hits=1 misses=2 cells=2 idle=2", s)
	}
}

func TestPoolIdleBound(t *testing.T) {
	p := newPool(1, 0)
	k := poolCell()
	// Check out two caches at once (both miss), return both: the second
	// must be dropped, not parked past the bound.
	a, _ := p.checkout(k)
	b, _ := p.checkout(k)
	if _, err := p.checkin(k, a); err != nil {
		t.Fatalf("checkin a: %v", err)
	}
	if _, err := p.checkin(k, b); err != nil {
		t.Fatalf("checkin b: %v", err)
	}
	if s := p.snapshot(); s.Idle != 1 {
		t.Fatalf("idle = %d, want 1 (bound)", s.Idle)
	}
}

func TestPoolRekeyInterval(t *testing.T) {
	p := newPool(2, 2)
	k := poolCell()
	poolRun(t, p, k, 1) // runs=1: no rekey
	if s := p.snapshot(); s.RekeyedClusters != 0 {
		t.Fatalf("rekeyed after 1 run: %+v", s)
	}
	poolRun(t, p, k, 2) // runs=2: rekey fires
	s := p.snapshot()
	if s.RekeyedClusters == 0 {
		t.Fatalf("no clusters rekeyed after interval: %+v", s)
	}
	if s.RekeyErrors != 0 {
		t.Fatalf("rekey errors: %+v", s)
	}
	// The rekeyed cache still serves byte-identical results (the
	// differential test pins this end-to-end; here just prove it runs).
	if warm := poolRun(t, p, k, 3); !warm {
		t.Fatalf("rekeyed cache was dropped")
	}
}
