package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
)

// RejectError is a server-side refusal of one request. Callers decide
// what to do from Code: busy means back off RetryAfter and resubmit,
// draining and bad-request are terminal.
type RejectError struct {
	Code       string
	RetryAfter time.Duration
	Msg        string
}

func (e *RejectError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("service: request rejected (%s, retry after %s): %s", e.Code, e.RetryAfter, e.Msg)
	}
	return fmt.Sprintf("service: request rejected (%s): %s", e.Code, e.Msg)
}

// Client speaks the fdserve wire protocol on one connection. It is safe
// for concurrent use: many goroutines may Do requests at once, and the
// single reader goroutine routes each response to its caller by request
// ID, so one slow instance never blocks replies for the others.
type Client struct {
	conn   transport.Conn
	tenant string
	shards int

	mu      sync.Mutex
	nextID  int
	pending map[int]chan response
	stats   []chan response
	readErr error

	done chan struct{}
}

// response is what the reader hands a waiting caller.
type response struct {
	payload []byte
	rej     *RejectError
	err     error
}

// NewClient performs the hello handshake on conn and starts the reader.
// The client owns the connection from here; Close releases it.
func NewClient(conn transport.Conn, tenant string) (*Client, error) {
	if err := conn.Send(encodeHello(tenant)); err != nil {
		return nil, fmt.Errorf("service: hello: %w", err)
	}
	frame, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("service: hello ack: %w", err)
	}
	shards, err := decodeHelloAck(frame)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		tenant:  tenant,
		shards:  shards,
		pending: make(map[int]chan response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Dial connects to an fdserve address and performs the handshake.
func Dial(addr, tenant string, opts ...transport.ConnOption) (*Client, error) {
	conn, err := transport.DialConn(addr, opts...)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, tenant)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Tenant returns the tenant name this connection authenticated as.
func (c *Client) Tenant() string { return c.tenant }

// Shards returns the server's executor shard count from the handshake.
func (c *Client) Shards() int { return c.shards }

// Close tears the connection down; in-flight Do and Stats calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

// readLoop routes incoming frames to their waiting callers until the
// connection dies, then fails everything still pending.
func (c *Client) readLoop() {
	defer close(c.done)
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			c.fail(fmt.Errorf("service: connection lost: %w", err))
			return
		}
		switch FrameKind(frame) {
		case KindResult:
			id, payload, err := decodeResult(frame)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(id, response{payload: payload})
		case KindReject:
			id, code, retryMS, msg, err := decodeReject(frame)
			if err != nil {
				c.fail(err)
				return
			}
			rej := &RejectError{Code: code, RetryAfter: time.Duration(retryMS) * time.Millisecond, Msg: msg}
			c.deliver(id, response{rej: rej})
		case KindStatsReply:
			payload, err := decodeStatsReply(frame)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			var ch chan response
			if len(c.stats) > 0 {
				ch = c.stats[0]
				c.stats = c.stats[1:]
			}
			c.mu.Unlock()
			if ch != nil {
				ch <- response{payload: payload}
			}
		default:
			c.fail(fmt.Errorf("service: unexpected frame kind %d", FrameKind(frame)))
			return
		}
	}
}

func (c *Client) deliver(id int, r response) {
	c.mu.Lock()
	ch := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ch != nil {
		ch <- r
	}
}

// fail poisons the client: every pending and future call gets err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	pending := c.pending
	c.pending = make(map[int]chan response)
	stats := c.stats
	c.stats = nil
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- response{err: err}
	}
	for _, ch := range stats {
		ch <- response{err: err}
	}
}

// Do submits one request and blocks for its reply. A server refusal
// comes back as a *RejectError (match with errors.As); transport or
// decode failures as ordinary errors.
func (c *Client) Do(req Request) (*Reply, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.conn.Send(encodeSubmit(id, payload)); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	r := <-ch
	if r.err != nil {
		return nil, r.err
	}
	if r.rej != nil {
		return nil, r.rej
	}
	var reply Reply
	if err := json.Unmarshal(r.payload, &reply); err != nil {
		return nil, fmt.Errorf("service: bad result payload: %w", err)
	}
	return &reply, nil
}

// Stats fetches the server's live snapshot.
func (c *Client) Stats() (Snapshot, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return Snapshot{}, err
	}
	c.stats = append(c.stats, ch)
	c.mu.Unlock()

	if err := c.conn.Send(encodeStats()); err != nil {
		return Snapshot{}, err
	}
	r := <-ch
	if r.err != nil {
		return Snapshot{}, r.err
	}
	var snap Snapshot
	if err := json.Unmarshal(r.payload, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("service: bad stats payload: %w", err)
	}
	return snap, nil
}
