package service

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// StatsSchema identifies the service snapshot JSON layout — the
// document /debug/serve serves live, KindStats returns over the wire,
// and cmd/fdserve writes on graceful drain (a valid partial snapshot
// even when clients were mid-stream).
const StatsSchema = "fdserve-stats/v1"

// latencyWindow bounds the sliding latency/queue-wait sample windows: a
// daemon serving millions of requests must summarize recent behavior in
// O(window) memory, not accumulate every sample forever.
const latencyWindow = 4096

// TenantSnapshot is one tenant's row.
type TenantSnapshot struct {
	Tenant string `json:"tenant"`
	// Submitted counts admitted requests; Served the completed ones
	// (errored runs included — Errors sub-counts those); Rejected the
	// admission-control refusals (busy/draining/bad-request).
	Submitted int64 `json:"submitted"`
	Served    int64 `json:"served"`
	Rejected  int64 `json:"rejected"`
	Errors    int64 `json:"errors"`
	// Conformant counts served runs whose verdict passed every scored
	// predicate.
	Conformant int64 `json:"conformant"`
}

// Snapshot is the live service view: admission and completion counters
// per tenant and in total, queue depth, pool amortization, and the
// end-to-end latency and queue-wait distributions over the most recent
// latencyWindow requests (milliseconds). Advisory telemetry — verdict
// bytes never depend on it.
type Snapshot struct {
	Schema    string    `json:"schema"`
	UpdatedAt time.Time `json:"updated_at"`
	Draining  bool      `json:"draining"`
	Shards    int       `json:"shards"`

	Submitted int64 `json:"submitted"`
	Served    int64 `json:"served"`
	Rejected  int64 `json:"rejected"`
	Errors    int64 `json:"errors"`
	Queued    int64 `json:"queued"`

	Pool    PoolSnapshot     `json:"pool"`
	Tenants []TenantSnapshot `json:"tenants,omitempty"`

	LatencyMS   metrics.Dist `json:"latency_ms"`
	QueueWaitMS metrics.Dist `json:"queue_wait_ms"`
}

// serverStats aggregates per-tenant counters and the bounded sample
// windows under one lock; executors record one completion each, so the
// critical sections are tiny.
type serverStats struct {
	mu        sync.Mutex
	tenants   map[string]*TenantSnapshot
	order     []string
	latency   *metrics.Window
	queueWait *metrics.Window
}

func newServerStats() *serverStats {
	return &serverStats{
		tenants:   make(map[string]*TenantSnapshot),
		latency:   metrics.NewWindow(latencyWindow),
		queueWait: metrics.NewWindow(latencyWindow),
	}
}

func (s *serverStats) tenant(name string) *TenantSnapshot {
	t, ok := s.tenants[name]
	if !ok {
		t = &TenantSnapshot{Tenant: name}
		s.tenants[name] = t
		s.order = append(s.order, name)
	}
	return t
}

func (s *serverStats) submitted(tenant string) {
	s.mu.Lock()
	s.tenant(tenant).Submitted++
	s.mu.Unlock()
}

func (s *serverStats) rejected(tenant string) {
	s.mu.Lock()
	s.tenant(tenant).Rejected++
	s.mu.Unlock()
}

func (s *serverStats) served(tenant string, errored, conformant bool, latency, queueWait time.Duration) {
	s.mu.Lock()
	t := s.tenant(tenant)
	t.Served++
	if errored {
		t.Errors++
	}
	if conformant {
		t.Conformant++
	}
	s.latency.Add(float64(latency.Nanoseconds()) / 1e6)
	s.queueWait.Add(float64(queueWait.Nanoseconds()) / 1e6)
	s.mu.Unlock()
}

// fill copies the counters and distributions into snap; tenants are
// sorted by name so snapshots render stably.
func (s *serverStats) fill(snap *Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range s.order {
		t := s.tenants[name]
		snap.Tenants = append(snap.Tenants, *t)
		snap.Submitted += t.Submitted
		snap.Served += t.Served
		snap.Rejected += t.Rejected
		snap.Errors += t.Errors
	}
	sort.Slice(snap.Tenants, func(i, j int) bool { return snap.Tenants[i].Tenant < snap.Tenants[j].Tenant })
	snap.LatencyMS = s.latency.Dist()
	snap.QueueWaitMS = s.queueWait.Dist()
}
