package service

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/sig"
	"repro/internal/transport"
)

// startServer wires a server to an in-memory acceptor and returns a
// connected client for tenant.
func startServer(t *testing.T, cfg Config, tenant string) (*Server, *transport.PipeAcceptor, *Client) {
	t.Helper()
	srv := NewServer(cfg)
	acc := transport.NewPipeAcceptor()
	go srv.Serve(acc)
	t.Cleanup(func() { acc.Close() })
	cl := dialTenant(t, acc, tenant)
	return srv, acc, cl
}

func dialTenant(t *testing.T, acc *transport.PipeAcceptor, tenant string) *Client {
	t.Helper()
	conn, err := acc.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cl, err := NewClient(conn, tenant)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

func chainRequest(seed int64) Request {
	return Request{Protocol: campaign.ProtoChain, N: 4, T: 1, Scheme: sig.SchemeToy, Seed: seed, KeySeed: 1}
}

func TestServeBasic(t *testing.T) {
	srv, acc, alpha := startServer(t, Config{Shards: 2}, "alpha")
	beta := dialTenant(t, acc, "beta")

	for seed := int64(1); seed <= 3; seed++ {
		for _, cl := range []*Client{alpha, beta} {
			reply, err := cl.Do(chainRequest(seed))
			if err != nil {
				t.Fatalf("%s seed %d: %v", cl.Tenant(), seed, err)
			}
			if reply.Result.Err != "" {
				t.Fatalf("%s seed %d errored: %s", cl.Tenant(), seed, reply.Result.Err)
			}
			if !reply.Result.Conformance.Conformant() {
				t.Fatalf("%s seed %d non-conformant: %+v", cl.Tenant(), seed, reply.Result.Conformance)
			}
			if reply.Source != "pool-hit" && reply.Source != "pool-miss" {
				t.Fatalf("source = %q", reply.Source)
			}
		}
	}

	snap, err := alpha.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if snap.Schema != StatsSchema {
		t.Fatalf("schema = %q", snap.Schema)
	}
	if snap.Served != 6 || snap.Submitted != 6 || snap.Rejected != 0 {
		t.Fatalf("snapshot counters = %+v", snap)
	}
	if len(snap.Tenants) != 2 || snap.Tenants[0].Tenant != "alpha" || snap.Tenants[1].Tenant != "beta" {
		t.Fatalf("tenants = %+v", snap.Tenants)
	}
	if snap.Tenants[0].Conformant != 3 || snap.Tenants[1].Conformant != 3 {
		t.Fatalf("conformant counts = %+v", snap.Tenants)
	}
	// 6 requests into one (protocol, scheme, n, t, keySeed) cell across 2
	// shards: at most 2 misses (one per executor), the rest amortized.
	if snap.Pool.Misses > 2 || snap.Pool.Hits < 4 {
		t.Fatalf("pool = %+v, want ≤2 misses", snap.Pool)
	}
	if snap.LatencyMS.Count != 6 || snap.LatencyMS.P99 <= 0 {
		t.Fatalf("latency dist = %+v", snap.LatencyMS)
	}
	_ = srv
}

func TestBadRequestRejected(t *testing.T) {
	_, _, cl := startServer(t, Config{Shards: 1}, "alpha")
	cases := []Request{
		{Protocol: "no-such-protocol", N: 4, T: 1, Seed: 1},
		{Protocol: campaign.ProtoChain, N: 4, T: 4, Scheme: sig.SchemeToy, Seed: 1}, // t ≥ n
		{Protocol: campaign.ProtoChain, N: 4, T: 1, Scheme: "no-such-scheme", Seed: 1},
	}
	for i, req := range cases {
		_, err := cl.Do(req)
		var rej *RejectError
		if !errors.As(err, &rej) {
			t.Fatalf("case %d: err = %v, want RejectError", i, err)
		}
		if rej.Code != RejectBadRequest || rej.RetryAfter != 0 {
			t.Fatalf("case %d: reject = %+v", i, rej)
		}
	}
}

// waitQueued polls until the server's queue depth reaches want.
func waitQueued(t *testing.T, srv *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Snapshot().Queued == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d (now %d)", want, srv.Snapshot().Queued)
}

// Backpressure: with the executor gated shut, a tenant's queue fills to
// QueueDepth and the next submit gets an explicit busy rejection with a
// retry hint — never unbounded buffering. Another tenant's queue is
// independent.
func TestBackpressureRejectsBusy(t *testing.T) {
	srv := NewServer(Config{Shards: 1, QueueDepth: 2, RetryAfter: 25 * time.Millisecond})
	srv.execGate = make(chan struct{}) // executors block until released
	acc := transport.NewPipeAcceptor()
	go srv.Serve(acc)
	defer acc.Close()
	alpha := dialTenant(t, acc, "alpha")
	beta := dialTenant(t, acc, "beta")

	// One request in execution (gated), two queued.
	results := make(chan error, 3)
	for seed := int64(1); seed <= 3; seed++ {
		req := chainRequest(seed)
		go func() {
			_, err := alpha.Do(req)
			results <- err
		}()
		if seed == 1 {
			// Wait for the executor to pop it so queue accounting below
			// is deterministic.
			waitQueued(t, srv, 0)
		}
	}
	waitQueued(t, srv, 2)

	// Queue full: explicit rejection, not a hang.
	_, err := alpha.Do(chainRequest(4))
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want RejectError", err)
	}
	if rej.Code != RejectBusy || rej.RetryAfter != 25*time.Millisecond {
		t.Fatalf("reject = %+v, want busy with 25ms hint", rej)
	}
	if !strings.Contains(rej.Msg, "alpha") {
		t.Fatalf("reject msg %q does not name the tenant", rej.Msg)
	}

	// Per-tenant bound: beta's queue is its own.
	betaDone := make(chan error, 1)
	go func() {
		_, err := beta.Do(chainRequest(5))
		betaDone <- err
	}()
	waitQueued(t, srv, 3)

	close(srv.execGate) // release the executors
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("gated request %d failed: %v", i, err)
		}
	}
	if err := <-betaDone; err != nil {
		t.Fatalf("beta request failed: %v", err)
	}
	snap := srv.Snapshot()
	if snap.Served != 4 || snap.Rejected != 1 {
		t.Fatalf("snapshot = served %d rejected %d, want 4/1", snap.Served, snap.Rejected)
	}
}

// Drain: queued work completes and is answered, new submits are
// rejected with the draining code, and the final snapshot is valid.
func TestDrainCompletesQueuedWork(t *testing.T) {
	srv := NewServer(Config{Shards: 1, QueueDepth: 8})
	srv.execGate = make(chan struct{})
	acc := transport.NewPipeAcceptor()
	go srv.Serve(acc)
	defer acc.Close()
	cl := dialTenant(t, acc, "alpha")

	results := make(chan error, 3)
	for seed := int64(1); seed <= 3; seed++ {
		req := chainRequest(seed)
		go func() {
			_, err := cl.Do(req)
			results <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Submitted < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	close(srv.execGate)
	snap := srv.Drain()
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued request %d failed across drain: %v", i, err)
		}
	}
	if !snap.Draining || snap.Served != 3 || snap.Queued != 0 {
		t.Fatalf("drain snapshot = %+v, want draining with 3 served, 0 queued", snap)
	}

	// Post-drain submits are refused, not hung.
	_, err := cl.Do(chainRequest(9))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Code != RejectDraining {
		t.Fatalf("post-drain err = %v, want draining rejection", err)
	}

	// Drain is idempotent.
	if again := srv.Drain(); again.Served != 3 {
		t.Fatalf("second drain = %+v", again)
	}
}

// The service emits one request span per served instance and reject
// points for refusals, through the shared obs layer.
func TestServiceObservability(t *testing.T) {
	sink := &obs.MemorySink{}
	rec := obs.NewRecorder(sink)
	_, _, cl := startServer(t, Config{Shards: 1, Recorder: rec}, "alpha")

	if _, err := cl.Do(chainRequest(1)); err != nil {
		t.Fatalf("do: %v", err)
	}
	if _, err := cl.Do(Request{Protocol: "nope", N: 4, T: 1, Seed: 1}); err == nil {
		t.Fatalf("bad request served")
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	spans := sink.Scoped("service.request")
	if len(spans) != 2 { // begin + end for the served request
		t.Fatalf("service.request events = %d, want 2", len(spans))
	}
	var sawEnd bool
	for _, e := range spans {
		if e.Kind == obs.KindEnd {
			sawEnd = true
			if !strings.Contains(e.Attrs, "conformant=true") || !strings.Contains(e.Attrs, "source=") {
				t.Fatalf("end attrs = %q", e.Attrs)
			}
		} else if !strings.Contains(e.Attrs, "tenant=alpha") {
			t.Fatalf("begin attrs = %q", e.Attrs)
		}
	}
	if !sawEnd {
		t.Fatalf("no end event for the request span")
	}
	if rejects := sink.Scoped("service.reject"); len(rejects) != 1 {
		t.Fatalf("service.reject points = %d, want 1", len(rejects))
	}
}

// Custom values thread end to end: a served request carrying a caller
// value produces exactly the result a local run with that value does.
func TestCustomValueRoundTrip(t *testing.T) {
	_, _, cl := startServer(t, Config{Shards: 1}, "alpha")
	req := chainRequest(1)
	req.Value = []byte{0x5a}
	reply, err := cl.Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if !reply.Result.Conformance.Conformant() {
		t.Fatalf("custom-value run non-conformant: %+v", reply.Result.Conformance)
	}
	local := campaign.RunInstance(campaign.Instance{
		Protocol: req.Protocol, N: req.N, T: req.T, Scheme: req.Scheme,
		Adversary: campaign.AdvNone, Seed: req.Seed, KeySeed: req.KeySeed,
		Value: req.Value,
	})
	if got, want := mustJSON(t, reply.Result), mustJSON(t, local); got != want {
		t.Fatalf("served custom-value result diverges from local run:\n got %s\nwant %s", got, want)
	}
	// And the value is load-bearing: dropping it changes the wire bytes.
	plain := campaign.RunInstance(campaign.Instance{
		Protocol: req.Protocol, N: req.N, T: req.T, Scheme: req.Scheme,
		Adversary: campaign.AdvNone, Seed: req.Seed, KeySeed: req.KeySeed,
	})
	if mustJSON(t, plain) == mustJSON(t, local) {
		t.Fatalf("custom value had no observable effect on the run")
	}
}
