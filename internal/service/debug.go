package service

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugMux returns the daemon's debug HTTP surface:
//
//	/debug/serve  — the live service Snapshot as JSON
//	/debug/vars   — stdlib expvar (cmdline, memstats)
//	/debug/pprof/ — stdlib pprof profiles
//
// cmd/fdserve serves it behind -debug-addr. Everything on it is
// advisory telemetry (wall-clock latency, queue depth, pool
// amortization) — served verdict bytes never depend on it, so exposing
// the mux can never perturb a result.
func (s *Server) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/serve", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
