package service

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/sig"
	"repro/internal/transport"
)

// The service's load-bearing correctness property: a verdict served
// through the daemon — warm pool, sharded executors, wire round-trip
// and all — is byte-identical to the one a one-shot campaign.Run
// produces for the same (spec, seed) cell. Key material is a pure
// function of (Scheme, N, KeySeed), runs reseed from the instance seed,
// and the JSON codec is deterministic, so any divergence is a real bug
// in the pool/reset/rekey path, not noise.

func diffSpec() campaign.Spec {
	return campaign.Spec{
		Name: "service-differential",
		Protocols: []string{
			campaign.ProtoChain, campaign.ProtoFDBA, campaign.ProtoVector,
			campaign.ProtoEIG, campaign.ProtoSmallRange,
		},
		Sizes:     []int{4, 7},
		Schemes:   []string{sig.SchemeToy},
		SeedBase:  1,
		SeedCount: 4,
	}
}

// serveAll replays every expanded instance through a served client and
// returns the replies indexed like the expansion, plus the server's
// final snapshot.
func serveAll(t *testing.T, cfg Config, insts []campaign.Instance) ([]*Reply, Snapshot) {
	t.Helper()
	srv := NewServer(cfg)
	acc := transport.NewPipeAcceptor()
	go srv.Serve(acc)
	defer acc.Close()
	cl := dialTenant(t, acc, "differential")

	replies := make([]*Reply, len(insts))
	for i, inst := range insts {
		reply, err := cl.Do(Request{
			Index: inst.Index, Protocol: inst.Protocol, N: inst.N, T: inst.T,
			Scheme: inst.Scheme, Seed: inst.Seed, KeySeed: inst.KeySeed,
		})
		if err != nil {
			t.Fatalf("instance %d (%s n=%d seed=%d): %v", i, inst.Protocol, inst.N, inst.Seed, err)
		}
		replies[i] = reply
	}
	return replies, srv.Drain()
}

func assertIdentical(t *testing.T, fresh []campaign.Result, served []*Reply) {
	t.Helper()
	sawHit := false
	for i, reply := range served {
		if got, want := mustJSON(t, reply.Result), mustJSON(t, fresh[i]); got != want {
			t.Fatalf("result %d (%s) diverges:\nserved %s\nfresh  %s",
				i, fresh[i].Group, got, want)
		}
		if reply.Source == "pool-hit" {
			sawHit = true
		}
	}
	if !sawHit {
		t.Fatalf("no request was served from a warm pool cell — the differential proved nothing")
	}
}

func TestServedVerdictsMatchFreshRuns(t *testing.T) {
	spec := diffSpec()
	insts, err := campaign.Expand(spec)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	rep, err := campaign.Run(spec, 1)
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	if len(rep.Results) != len(insts) {
		t.Fatalf("expansion/report mismatch: %d vs %d", len(insts), len(rep.Results))
	}
	served, snap := serveAll(t, Config{Shards: 3}, insts)
	assertIdentical(t, rep.Results, served)
	if snap.Served != int64(len(insts)) || snap.Errors != 0 {
		t.Fatalf("snapshot = %+v, want %d served with 0 errors", snap, len(insts))
	}
}

// The same property must survive aggressive rekeying: every third
// check-in rotates a cell's clusters onto a fresh key epoch, and the
// bytes still may not move (key material re-derives from the same
// seeds).
func TestServedVerdictsSurviveRekey(t *testing.T) {
	spec := diffSpec()
	insts, err := campaign.Expand(spec)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	rep, err := campaign.Run(spec, 1)
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	served, snap := serveAll(t, Config{Shards: 2, RekeyEvery: 3}, insts)
	assertIdentical(t, rep.Results, served)
	if snap.Pool.RekeyedClusters == 0 {
		t.Fatalf("no clusters were rekeyed — the rekey differential proved nothing: %+v", snap.Pool)
	}
	if snap.Pool.RekeyErrors != 0 {
		t.Fatalf("rekey errors: %+v", snap.Pool)
	}
}
