// Package service is the agreement-as-a-service layer: a long-lived
// daemon (cmd/fdserve is the CLI) that multiplexes many concurrent
// agreement instances over shared framed connections, instead of the
// one-shot set-up-run-exit shape every other entry point has. The
// moving parts:
//
//   - a checksummed request/response wire protocol over transport.Conn
//     (wire.go), carrying (tenant, protocol, n, t, scheme, value, seed)
//     requests and verdict/latency replies;
//   - a warm-cluster pool (pool.go) keyed by (protocol, scheme, n, t,
//     keySeed) cells, so a sustained request stream pays keygen and the
//     authentication handshake once per cell, with periodic
//     deterministic re-keying;
//   - instance-ID-sharded executors with bounded per-tenant FIFO queues
//     and round-robin tenant service, so one flooding tenant can
//     neither starve another nor buffer without bound — the full queue
//     answers with an explicit RETRY-AFTER rejection;
//   - graceful drain: admission stops, queued work finishes, and the
//     final stats snapshot (stats.go) is still valid mid-stream.
//
// Served verdicts are byte-identical to one-shot campaign.Run results
// for the same instances — the warm-pool-vs-fresh differential test
// pins that, exactly as the campaign setup cache's differential does.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adversary"
	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/sig"
	"repro/internal/transport"
)

// Request is one agreement request as carried in a submit frame's JSON
// payload. The tenant is connection state (from the hello), not
// per-request.
type Request struct {
	// Index is echoed into Result.Index — clients correlating served
	// results with a campaign expansion set it to the instance's index.
	Index int `json:"index"`
	// Protocol is a registered driver name.
	Protocol string `json:"protocol"`
	// N and T are the system size and fault bound.
	N int `json:"n"`
	T int `json:"t"`
	// Scheme is the signature-scheme registry name; empty selects the
	// core default for signing drivers and is forced empty for unsigned
	// ones.
	Scheme string `json:"scheme,omitempty"`
	// Value optionally overrides the protocol's canonical sender
	// proposal.
	Value []byte `json:"value,omitempty"`
	// Seed drives the run's randomness; KeySeed pins its key material
	// (requests sharing (Protocol, Scheme, N, T, KeySeed) share a warm
	// pool cell).
	Seed    int64 `json:"seed"`
	KeySeed int64 `json:"key_seed"`
}

// Reply is one served request's response payload: the full campaign
// result (verdict, conformance, traffic) plus the service-side latency
// split and where the setup came from ("pool-hit", "pool-miss", or
// "none" for drivers without cacheable setup).
type Reply struct {
	Result  campaign.Result `json:"result"`
	QueueNS int64           `json:"queue_ns"`
	RunNS   int64           `json:"run_ns"`
	Source  string          `json:"source"`
}

// Config tunes a Server; the zero value serves with the documented
// defaults.
type Config struct {
	// Shards is the executor count; requests are sharded by instance ID
	// (default 4).
	Shards int
	// QueueDepth bounds each tenant's FIFO on each shard (default 64).
	// A full queue rejects with RETRY-AFTER instead of buffering.
	QueueDepth int
	// PoolIdle bounds the warm setup caches parked per pool cell
	// (default 2).
	PoolIdle int
	// RekeyEvery rotates a pool cell's clusters onto a fresh key epoch
	// every that many served requests of the cell; 0 never rekeys.
	RekeyEvery int
	// RetryAfter is the backoff hint sent with busy rejections
	// (default 50ms).
	RetryAfter time.Duration
	// Recorder receives per-request "service.request" spans and
	// reject/rekey/drain points; nil disables tracing (the default).
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.PoolIdle < 1 {
		c.PoolIdle = 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	return c
}

// session is one client connection's state.
type session struct {
	conn   transport.Conn
	tenant string
}

// task is one admitted request queued for execution.
type task struct {
	sess      *session
	reqID     int
	inst      campaign.Instance
	cacheable bool
	enqueued  time.Time
	span      obs.Span
}

// enqueue outcomes.
const (
	enqueueOK = iota
	enqueueFull
	enqueueStopped
)

// shard is one executor: a map of bounded per-tenant FIFO queues served
// round-robin, so tenants progress fairly regardless of who floods.
type shard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]task
	ring    []string // tenant rotation, first-appearance order
	next    int      // round-robin cursor into ring
	pending int
	stopped bool
	depth   int
}

func newShard(depth int) *shard {
	sh := &shard{queues: make(map[string][]task), depth: depth}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

func (sh *shard) enqueue(tenant string, t task) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopped {
		return enqueueStopped
	}
	q := sh.queues[tenant]
	if len(q) >= sh.depth {
		return enqueueFull
	}
	if q == nil {
		sh.ring = append(sh.ring, tenant)
	}
	sh.queues[tenant] = append(q, t)
	sh.pending++
	sh.cond.Signal()
	return enqueueOK
}

// pop returns the next task round-robin across tenants, blocking until
// one is queued; ok is false when the shard is stopped and fully
// drained.
func (sh *shard) pop() (task, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.pending == 0 && !sh.stopped {
		sh.cond.Wait()
	}
	if sh.pending == 0 {
		return task{}, false
	}
	for i := 0; i < len(sh.ring); i++ {
		tenant := sh.ring[(sh.next+i)%len(sh.ring)]
		q := sh.queues[tenant]
		if len(q) == 0 {
			continue
		}
		t := q[0]
		sh.queues[tenant] = q[1:]
		sh.pending--
		sh.next = (sh.next + i + 1) % len(sh.ring)
		return t, true
	}
	// Unreachable: pending > 0 implies a non-empty queue.
	panic("service: shard pending count out of sync")
}

func (sh *shard) stop() {
	sh.mu.Lock()
	sh.stopped = true
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

func (sh *shard) queued() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.pending
}

// Server is the multiplexed agreement daemon. Construct with NewServer,
// feed it connections with Serve (or Attach for a single in-memory
// conn), and shut down with Drain.
type Server struct {
	cfg      Config
	rec      *obs.Recorder
	pool     *pool
	stats    *serverStats
	shards   []*shard
	nextInst atomic.Int64
	draining atomic.Bool
	wg       sync.WaitGroup // shard executors
	connWG   sync.WaitGroup // connection handlers

	// execGate, when non-nil, makes every executor receive a token
	// before running a task — an in-package test hook that makes queue
	// backpressure and fairness deterministic to observe.
	execGate chan struct{}
}

// NewServer builds and starts a server's executor shards. The server
// accepts work immediately; it runs until Drain.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		rec:   cfg.Recorder,
		pool:  newPool(cfg.PoolIdle, cfg.RekeyEvery),
		stats: newServerStats(),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(cfg.QueueDepth)
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				t, ok := sh.pop()
				if !ok {
					return
				}
				s.execute(t)
			}
		}()
	}
	return s
}

// Serve accepts connections until the acceptor closes (returns nil) or
// fails (returns the error). Each connection is handled on its own
// goroutine; many Serve calls may feed one server.
func (s *Server) Serve(acc transport.Acceptor) error {
	for {
		conn, err := acc.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		s.Attach(conn)
	}
}

// Attach adopts one established connection (the in-memory test path).
func (s *Server) Attach(conn transport.Conn) {
	s.connWG.Add(1)
	go func() {
		defer s.connWG.Done()
		s.handleConn(conn)
	}()
}

// handleConn speaks the wire protocol on one connection: hello/ack,
// then submit and stats frames until the link closes. A frame that
// fails to decode or checksum closes the connection — a link that
// corrupts bytes cannot be trusted with verdicts.
func (s *Server) handleConn(conn transport.Conn) {
	defer conn.Close()
	frame, err := conn.Recv()
	if err != nil {
		return
	}
	tenant, err := decodeHello(frame)
	if err != nil {
		return
	}
	if err := conn.Send(encodeHelloAck(len(s.shards))); err != nil {
		return
	}
	sess := &session{conn: conn, tenant: tenant}
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		switch FrameKind(frame) {
		case KindSubmit:
			reqID, payload, err := decodeSubmit(frame)
			if err != nil {
				return
			}
			s.admit(sess, reqID, payload)
		case KindStats:
			data, err := json.Marshal(s.Snapshot())
			if err != nil {
				return
			}
			if err := conn.Send(encodeStatsReply(data)); err != nil {
				return
			}
		default:
			return
		}
	}
}

// admit validates one submitted request and queues it on its shard, or
// answers with the matching rejection. Admission control is explicit:
// the only unbounded thing in this server is the request stream itself.
func (s *Server) admit(sess *session, reqID int, payload []byte) {
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		s.reject(sess, reqID, RejectBadRequest, 0, "bad request payload: "+err.Error())
		return
	}
	if s.draining.Load() {
		s.reject(sess, reqID, RejectDraining, 0, "server is draining")
		return
	}
	inst, cacheable, err := s.resolve(req)
	if err != nil {
		s.reject(sess, reqID, RejectBadRequest, 0, err.Error())
		return
	}
	instID := s.nextInst.Add(1)
	sh := s.shards[int(instID%int64(len(s.shards)))]
	t := task{sess: sess, reqID: reqID, inst: inst, cacheable: cacheable, enqueued: time.Now()}
	if s.rec.Enabled() {
		t.span = s.rec.Begin(obs.Event{
			Scope: "service.request", Inst: int(instID), Proto: req.Protocol, Node: -1,
			Attrs: obs.Attrs("tenant", sess.tenant, "n", req.N, "t", req.T, "seed", req.Seed),
		})
	}
	switch sh.enqueue(sess.tenant, t) {
	case enqueueOK:
		s.stats.submitted(sess.tenant)
	case enqueueFull:
		t.span.End(obs.Attrs("rejected", RejectBusy))
		s.reject(sess, reqID, RejectBusy, s.cfg.RetryAfter, fmt.Sprintf("tenant %s queue full on shard %d", sess.tenant, instID%int64(len(s.shards))))
	case enqueueStopped:
		t.span.End(obs.Attrs("rejected", RejectDraining))
		s.reject(sess, reqID, RejectDraining, 0, "server is draining")
	}
}

// resolve maps a wire request onto a runnable campaign instance,
// rejecting combinations no driver can execute.
func (s *Server) resolve(req Request) (campaign.Instance, bool, error) {
	drv, err := protocol.Lookup(req.Protocol)
	if err != nil {
		return campaign.Instance{}, false, err
	}
	caps := drv.Capabilities()
	scheme := req.Scheme
	if !caps.UsesSignatures {
		scheme = ""
	} else if scheme != "" {
		if _, err := sig.ByName(scheme); err != nil {
			return campaign.Instance{}, false, err
		}
	}
	if !caps.Supports(req.N, req.T, adversary.Strategy{}) {
		return campaign.Instance{}, false,
			fmt.Errorf("service: protocol %s does not support n=%d t=%d", req.Protocol, req.N, req.T)
	}
	inst := campaign.Instance{
		Index:     req.Index,
		Protocol:  req.Protocol,
		N:         req.N,
		T:         req.T,
		Scheme:    scheme,
		Adversary: campaign.AdvNone,
		Seed:      req.Seed,
		KeySeed:   req.KeySeed,
		Value:     req.Value,
	}
	return inst, caps.CacheableSetup, nil
}

func (s *Server) reject(sess *session, reqID int, code string, retryAfter time.Duration, msg string) {
	s.stats.rejected(sess.tenant)
	if s.rec.Enabled() {
		s.rec.Point("service.reject", obs.Attrs("tenant", sess.tenant, "code", code))
	}
	// A send failure means the client is gone; nothing to do.
	_ = sess.conn.Send(encodeReject(reqID, code, int(retryAfter.Milliseconds()), msg))
}

// execute runs one admitted task on its executor shard: check a warm
// setup out of the pool (cacheable drivers), run through the exact
// campaign result/conformance path, check the setup back in (rekeying
// on the interval), and answer the client.
func (s *Server) execute(t task) {
	if s.execGate != nil {
		<-s.execGate
	}
	queueWait := time.Since(t.enqueued)
	source := "none"
	var sc *protocol.SetupCache
	var key cellKey
	if t.cacheable {
		key = cellKey{Protocol: t.inst.Protocol, Scheme: t.inst.Scheme,
			N: t.inst.N, T: t.inst.T, KeySeed: t.inst.KeySeed}
		var warm bool
		sc, warm = s.pool.checkout(key)
		if warm {
			source = "pool-hit"
		} else {
			source = "pool-miss"
		}
	}
	runStart := time.Now()
	res := campaign.RunInstanceWith(t.inst, sc)
	runDur := time.Since(runStart)
	if t.cacheable {
		rekeyed, err := s.pool.checkin(key, sc)
		if (rekeyed > 0 || err != nil) && s.rec.Enabled() {
			s.rec.Point("service.rekey", obs.Attrs("protocol", key.Protocol, "n", key.N,
				"rekeyed", rekeyed, "err", err != nil))
		}
	}
	reply := Reply{Result: res, QueueNS: queueWait.Nanoseconds(), RunNS: runDur.Nanoseconds(), Source: source}
	payload, err := json.Marshal(reply)
	if err != nil {
		payload = nil // impossible for plain-data Result; fail the frame below
	}
	// A send failure means the client went away mid-request; the run
	// still counts (the work was done).
	_ = t.sess.conn.Send(encodeResult(t.reqID, payload))
	latency := time.Since(t.enqueued)
	conformant := res.Err == "" && res.Conformance != nil && res.Conformance.Conformant()
	s.stats.served(t.sess.tenant, res.Err != "", conformant, latency, queueWait)
	t.span.End(obs.Attrs("conformant", conformant, "source", source,
		"queue_ns", queueWait.Nanoseconds(), "run_ns", runDur.Nanoseconds(), "errored", res.Err != ""))
}

// Drain gracefully shuts the server down: admission stops (new submits
// are rejected with RejectDraining), every queued task runs to
// completion and is answered, and the final snapshot is returned —
// valid even when clients were mid-stream (the CI smoke pins that).
// Connections stay open; callers close their acceptor/listener and
// exit. Drain is idempotent.
func (s *Server) Drain() Snapshot {
	if s.draining.CompareAndSwap(false, true) {
		for _, sh := range s.shards {
			sh.stop()
		}
	}
	s.wg.Wait()
	if s.rec.Enabled() {
		s.rec.Point("service.drain", obs.Attrs("served", s.Snapshot().Served))
	}
	return s.Snapshot()
}

// Snapshot builds the live stats view; safe from any goroutine.
func (s *Server) Snapshot() Snapshot {
	snap := Snapshot{
		Schema:    StatsSchema,
		UpdatedAt: time.Now().UTC(),
		Draining:  s.draining.Load(),
		Shards:    len(s.shards),
		Pool:      s.pool.snapshot(),
	}
	for _, sh := range s.shards {
		snap.Queued += int64(sh.queued())
	}
	s.stats.fill(&snap)
	return snap
}
