package service

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"repro/internal/sig"
)

// The agreement-service wire protocol: framed request/response kinds
// multiplexed over one transport.Conn per client connection. Frames
// reuse the repository's canonical length-delimited codec
// (internal/sig), following the sched wire protocol's shape: a tagged
// hello handshake, then payload-bearing kinds carrying a SHA-256
// checksum over the payload so a corrupted frame is DETECTED and fails
// the request instead of silently corrupting a verdict. Many requests
// may be in flight on one connection at once — responses carry the
// client-chosen request ID, and arrive in completion order, not
// submission order.

// Frame kinds.
const (
	// KindHello is the client's first frame: protocol tag + tenant name.
	KindHello = 1
	// KindHelloAck confirms the hello: tag + the server's shard count.
	KindHelloAck = 2
	// KindSubmit carries one agreement request client → server.
	KindSubmit = 3
	// KindResult carries one completed request's reply server → client.
	KindResult = 4
	// KindReject refuses one request: admission control (queue full,
	// draining) or validation. Carries a retry-after hint in
	// milliseconds; 0 means do not retry (the request can never succeed).
	KindReject = 5
	// KindStats asks for the live server snapshot.
	KindStats = 6
	// KindStatsReply carries the snapshot JSON server → client.
	KindStatsReply = 7
)

// Reject codes.
const (
	// RejectBusy: the tenant's queue on the request's shard is full.
	// Retry after the hinted delay — the explicit backpressure signal
	// that replaces unbounded buffering.
	RejectBusy = "busy"
	// RejectDraining: the server is shutting down and admits nothing new.
	RejectDraining = "draining"
	// RejectBadRequest: the request can never run (unknown protocol,
	// unsupported (n, t), unknown scheme). Never retried.
	RejectBadRequest = "bad-request"
)

// wireTag guards against cross-protocol connections.
const wireTag = "fdserve/v1"

// FrameKind peeks a frame's kind without decoding the rest (-1 when the
// frame is too short to carry one).
func FrameKind(frame []byte) int {
	if len(frame) < sig.IntFieldSize {
		return -1
	}
	d := sig.NewDecoder(frame)
	return d.Int()
}

func encodeHello(tenant string) []byte {
	out := make([]byte, 0, sig.IntFieldSize+sig.BytesFieldSize(len(wireTag))+sig.BytesFieldSize(len(tenant)))
	out = sig.AppendInt(out, KindHello)
	out = sig.AppendString(out, wireTag)
	return sig.AppendString(out, tenant)
}

func decodeHello(frame []byte) (tenant string, err error) {
	d := sig.NewDecoder(frame)
	if kind := d.Int(); kind != KindHello {
		return "", fmt.Errorf("service: expected hello, got frame kind %d", kind)
	}
	if tag := d.String(); tag != wireTag {
		return "", fmt.Errorf("service: bad protocol tag %q (want %s)", tag, wireTag)
	}
	tenant = d.String()
	if ferr := d.Finish(); ferr != nil {
		return "", fmt.Errorf("service: bad hello: %w", ferr)
	}
	if tenant == "" {
		return "", fmt.Errorf("service: hello with empty tenant name")
	}
	return tenant, nil
}

func encodeHelloAck(shards int) []byte {
	out := make([]byte, 0, 2*sig.IntFieldSize+sig.BytesFieldSize(len(wireTag)))
	out = sig.AppendInt(out, KindHelloAck)
	out = sig.AppendString(out, wireTag)
	return sig.AppendInt(out, shards)
}

func decodeHelloAck(frame []byte) (shards int, err error) {
	d := sig.NewDecoder(frame)
	if kind := d.Int(); kind != KindHelloAck {
		return 0, fmt.Errorf("service: expected hello ack, got frame kind %d", kind)
	}
	if tag := d.String(); tag != wireTag {
		return 0, fmt.Errorf("service: bad protocol tag %q (want %s)", tag, wireTag)
	}
	shards = d.Int()
	if ferr := d.Finish(); ferr != nil {
		return 0, fmt.Errorf("service: bad hello ack: %w", ferr)
	}
	return shards, nil
}

// encodePayload frames one checksummed payload-bearing kind: the kind,
// the request ID, a SHA-256 over the payload, and the payload itself.
func encodePayload(kind, id int, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, 2*sig.IntFieldSize+sig.BytesFieldSize(len(sum))+sig.BytesFieldSize(len(payload)))
	out = sig.AppendInt(out, kind)
	out = sig.AppendInt(out, id)
	out = sig.AppendBytes(out, sum[:])
	return sig.AppendBytes(out, payload)
}

// decodePayload decodes and checksum-verifies one payload-bearing frame.
func decodePayload(frame []byte, wantKind int, what string) (id int, payload []byte, err error) {
	d := sig.NewDecoder(frame)
	if kind := d.Int(); kind != wantKind {
		return 0, nil, fmt.Errorf("service: expected %s, got frame kind %d", what, kind)
	}
	id = d.Int()
	sum := d.Bytes()
	payload = d.Bytes()
	if ferr := d.Finish(); ferr != nil {
		return 0, nil, fmt.Errorf("service: bad %s frame: %w", what, ferr)
	}
	want := sha256.Sum256(payload)
	if !bytes.Equal(sum, want[:]) {
		return 0, nil, fmt.Errorf("service: %s %d payload checksum mismatch", what, id)
	}
	return id, payload, nil
}

func encodeSubmit(id int, payload []byte) []byte { return encodePayload(KindSubmit, id, payload) }

func decodeSubmit(frame []byte) (id int, payload []byte, err error) {
	return decodePayload(frame, KindSubmit, "submit")
}

func encodeResult(id int, payload []byte) []byte { return encodePayload(KindResult, id, payload) }

func decodeResult(frame []byte) (id int, payload []byte, err error) {
	return decodePayload(frame, KindResult, "result")
}

func encodeReject(id int, code string, retryAfterMS int, msg string) []byte {
	out := make([]byte, 0, 3*sig.IntFieldSize+sig.BytesFieldSize(len(code))+sig.BytesFieldSize(len(msg)))
	out = sig.AppendInt(out, KindReject)
	out = sig.AppendInt(out, id)
	out = sig.AppendString(out, code)
	out = sig.AppendInt(out, retryAfterMS)
	return sig.AppendString(out, msg)
}

func decodeReject(frame []byte) (id int, code string, retryAfterMS int, msg string, err error) {
	d := sig.NewDecoder(frame)
	if kind := d.Int(); kind != KindReject {
		return 0, "", 0, "", fmt.Errorf("service: expected reject, got frame kind %d", kind)
	}
	id = d.Int()
	code = d.String()
	retryAfterMS = d.Int()
	msg = d.String()
	if ferr := d.Finish(); ferr != nil {
		return 0, "", 0, "", fmt.Errorf("service: bad reject frame: %w", ferr)
	}
	return id, code, retryAfterMS, msg, nil
}

func encodeStats() []byte {
	out := make([]byte, 0, sig.IntFieldSize)
	return sig.AppendInt(out, KindStats)
}

func encodeStatsReply(payload []byte) []byte { return encodePayload(KindStatsReply, 0, payload) }

func decodeStatsReply(frame []byte) (payload []byte, err error) {
	_, payload, err = decodePayload(frame, KindStatsReply, "stats reply")
	return payload, err
}
