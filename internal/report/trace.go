package report

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// ScopeSummary aggregates one event scope across a trace: how many
// events it produced, how many were closed spans, and the span-duration
// profile. This is the operator's first view of a JSONL trace — where
// the wall-time went, scope by scope.
type ScopeSummary struct {
	Scope  string
	Events int // all events in the scope, any kind
	Spans  int // KindEnd events, i.e. completed spans
	Total  time.Duration
	Mean   time.Duration
	Max    time.Duration
}

// LoadTrace reads an obs JSONL trace file.
func LoadTrace(path string) ([]obs.Event, error) {
	return obs.ReadJSONLFile(path)
}

// AggregateTrace folds a trace into per-scope summaries, sorted by
// descending total span time (ties by scope name) so the expensive
// scopes lead.
func AggregateTrace(events []obs.Event) []ScopeSummary {
	byScope := make(map[string]*ScopeSummary)
	for _, e := range events {
		s := byScope[e.Scope]
		if s == nil {
			s = &ScopeSummary{Scope: e.Scope}
			byScope[e.Scope] = s
		}
		s.Events++
		if e.Kind == obs.KindEnd {
			s.Spans++
			d := time.Duration(e.Dur)
			s.Total += d
			if d > s.Max {
				s.Max = d
			}
		}
	}
	out := make([]ScopeSummary, 0, len(byScope))
	for _, s := range byScope {
		if s.Spans > 0 {
			s.Mean = s.Total / time.Duration(s.Spans)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Scope < out[j].Scope
	})
	return out
}

// TraceTable renders scope summaries as a human table.
func TraceTable(sums []ScopeSummary) *metrics.Table {
	tbl := metrics.NewTable(fmt.Sprintf("Trace — %d scopes", len(sums)),
		"scope", "events", "spans", "total", "mean", "max")
	for _, s := range sums {
		tbl.AddRow(s.Scope, s.Events, s.Spans,
			s.Total.Round(time.Microsecond).String(),
			s.Mean.Round(time.Microsecond).String(),
			s.Max.Round(time.Microsecond).String())
	}
	return tbl
}
