package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func campaignFixture(msgMean float64, conformant int, violations []string) *campaign.Report {
	return &campaign.Report{
		Schema:    campaign.ReportSchema,
		Name:      "fixture",
		Instances: 4,
		Groups: []campaign.GroupSummary{{
			Key: "chain/n=4/t=1/toy/none", Protocol: "chain", N: 4, T: 1,
			Scheme: "toy", Adversary: "none",
			Instances: 4, AgreeRate: 1, DiscoveryRate: 1,
			Conformant: conformant, Violations: violations,
			Messages: metrics.Dist{Count: 4, Mean: msgMean},
			Bytes:    metrics.Dist{Count: 4, Mean: 10 * msgMean},
			Rounds:   metrics.Dist{Count: 4, Mean: 3},
		}},
	}
}

func TestDiffCampaignCleanRun(t *testing.T) {
	old := campaignFixture(100, 4, nil)
	new := campaignFixture(100, 4, nil)
	d := DiffCampaign(old, new, 5)
	if len(d.Entries) != 0 {
		t.Fatalf("identical reports produced entries: %+v", d.Entries)
	}
	if d.Compared == 0 {
		t.Fatal("no comparisons recorded")
	}
	var buf strings.Builder
	d.Render(&buf)
	if !strings.Contains(buf.String(), "no changes") {
		t.Errorf("clean render = %q", buf.String())
	}
}

func TestDiffCampaignMetricRegression(t *testing.T) {
	old := campaignFixture(100, 4, nil)
	// +20% messages trips a 5% threshold but not a 50% one.
	new := campaignFixture(120, 4, nil)
	if d := DiffCampaign(old, new, 5); len(d.Regressions()) == 0 {
		t.Error("20% message growth passed a 5% threshold")
	}
	d := DiffCampaign(old, new, 50)
	if reg := d.Regressions(); len(reg) != 0 {
		t.Errorf("20%% message growth failed a 50%% threshold: %+v", reg)
	}
	// The change is still reported, just not as a regression.
	if len(d.Entries) == 0 {
		t.Error("changed metric produced no entry")
	}
}

func TestDiffCampaignConformanceIsExact(t *testing.T) {
	old := campaignFixture(100, 4, nil)
	new := campaignFixture(100, 3, []string{"agreement"})
	// Conformance has no tolerance band: even a huge threshold fails.
	d := DiffCampaign(old, new, 1000)
	reg := d.Regressions()
	if len(reg) == 0 {
		t.Fatal("lost conformant run passed the gate")
	}
	metricsSeen := make(map[string]bool)
	for _, e := range reg {
		metricsSeen[e.Metric] = true
	}
	if !metricsSeen["conform_rate"] || !metricsSeen["violation"] {
		t.Errorf("expected conform_rate and violation regressions, got %+v", reg)
	}
}

func TestDiffCampaignStructuralChanges(t *testing.T) {
	old := campaignFixture(100, 4, nil)
	new := campaignFixture(100, 4, nil)
	new.Groups[0].Key = "chain/n=8/t=2/toy/none"
	d := DiffCampaign(old, new, 5)
	var missing, added bool
	for _, e := range d.Entries {
		if e.Metric == "group" && e.Regressed {
			missing = true
		}
		if e.Metric == "group" && !e.Regressed {
			added = true
		}
	}
	if !missing || !added {
		t.Errorf("group rename should yield one missing (regressed) and one new entry: %+v", d.Entries)
	}
}

func perfFixture(ns float64, allocs int64) *PerfReport {
	return &PerfReport{
		Schema: PerfSchema, GoVersion: "go1.24", Label: "BENCH_test",
		Benchmarks: []PerfResult{
			{Name: "chain_n4_t1", NsPerOp: ns, AllocsPerOp: allocs, Iterations: 100},
			{Name: "vector_n4_t1", NsPerOp: 2 * ns, AllocsPerOp: 2 * allocs, Iterations: 100},
		},
	}
}

func TestDiffPerfThreshold(t *testing.T) {
	old := perfFixture(1000, 50)
	new := perfFixture(1100, 50) // +10% ns/op
	if d := DiffPerf(old, new, 5); len(d.Regressions()) == 0 {
		t.Error("10% slowdown passed a 5% threshold")
	}
	if d := DiffPerf(old, new, 50); len(d.Regressions()) != 0 {
		t.Error("10% slowdown failed a 50% threshold")
	}
	faster := DiffPerf(old, perfFixture(800, 50), 5)
	if len(faster.Regressions()) != 0 {
		t.Error("improvement flagged as regression")
	}
	if len(faster.Entries) == 0 {
		t.Error("improvement not reported at all")
	}
}

func TestDiffPerfMissingBenchmarkRegresses(t *testing.T) {
	old := perfFixture(1000, 50)
	new := perfFixture(1000, 50)
	new.Benchmarks = new.Benchmarks[:1]
	d := DiffPerf(old, new, 50)
	reg := d.Regressions()
	if len(reg) != 1 || reg[0].Cell != "vector_n4_t1" {
		t.Errorf("dropped benchmark should regress, got %+v", reg)
	}
}

// servicePerfFixture is a suite with one sustained-throughput row
// carrying service-level metrics.
func servicePerfFixture(p50, p99, ops float64) *PerfReport {
	return &PerfReport{
		Schema: PerfSchema, GoVersion: "go1.24", Label: "BENCH_test",
		Benchmarks: []PerfResult{
			{Name: "serve_sustained/chain/n=8_t=2_clients=8", NsPerOp: 1000, AllocsPerOp: 10,
				Iterations: 100, P50Ns: p50, P99Ns: p99, OpsPerSec: ops},
		},
	}
}

func TestDiffPerfServiceMetrics(t *testing.T) {
	old := servicePerfFixture(1e6, 5e6, 400)
	// Latency up 50%, throughput down 25%: both must regress at 10%.
	worse := servicePerfFixture(1.5e6, 7.5e6, 300)
	d := DiffPerf(old, worse, 10)
	regressed := map[string]bool{}
	for _, e := range d.Regressions() {
		regressed[e.Metric] = true
	}
	if !regressed["p50_ns"] || !regressed["p99_ns"] || !regressed["ops_per_sec"] {
		t.Errorf("service regressions not gated: %+v", d.Regressions())
	}

	// Faster and higher-throughput must pass, and throughput direction
	// must not be inverted (more ops/sec is better).
	better := servicePerfFixture(0.5e6, 2e6, 800)
	if d := DiffPerf(old, better, 10); len(d.Regressions()) != 0 {
		t.Errorf("service improvement flagged as regression: %+v", d.Regressions())
	}

	// A row that silently lost its service metrics regresses: the gate
	// would otherwise stop covering the daemon without anyone noticing.
	lost := servicePerfFixture(1e6, 5e6, 400)
	lost.Benchmarks[0].P50Ns, lost.Benchmarks[0].P99Ns, lost.Benchmarks[0].OpsPerSec = 0, 0, 0
	if d := DiffPerf(old, lost, 10); len(d.Regressions()) == 0 {
		t.Error("vanished service metrics passed the gate")
	}
}

func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestDiffFilesAutodetect(t *testing.T) {
	dir := t.TempDir()
	oldPerf := writeJSON(t, dir, "old.json", perfFixture(1000, 50))
	newPerf := writeJSON(t, dir, "new.json", perfFixture(1200, 50))
	d, err := DiffFiles(oldPerf, newPerf, 5)
	if err != nil {
		t.Fatalf("DiffFiles(perf): %v", err)
	}
	if d.Schema != PerfSchema || len(d.Regressions()) == 0 {
		t.Errorf("perf diff = %+v", d)
	}

	oldCamp := writeJSON(t, dir, "oldc.json", campaignFixture(100, 4, nil))
	newCamp := writeJSON(t, dir, "newc.json", campaignFixture(100, 4, nil))
	d, err = DiffFiles(oldCamp, newCamp, 5)
	if err != nil {
		t.Fatalf("DiffFiles(campaign): %v", err)
	}
	if d.Schema != campaign.ReportSchema || len(d.Entries) != 0 {
		t.Errorf("campaign diff = %+v", d)
	}

	if _, err := DiffFiles(oldPerf, newCamp, 5); err == nil {
		t.Error("cross-schema diff should fail")
	}
	bogus := filepath.Join(dir, "bogus.json")
	os.WriteFile(bogus, []byte(`{"schema":"nope/v9"}`), 0o644)
	if _, err := DiffFiles(bogus, bogus, 5); err == nil {
		t.Error("unknown schema should fail")
	}
}

func TestAggregateTrace(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindBegin, Scope: "campaign.instance"},
		{Kind: obs.KindEnd, Scope: "campaign.instance", Dur: int64(2 * time.Millisecond)},
		{Kind: obs.KindBegin, Scope: "campaign.instance"},
		{Kind: obs.KindEnd, Scope: "campaign.instance", Dur: int64(4 * time.Millisecond)},
		{Kind: obs.KindPoint, Scope: "sched.heartbeat"},
		{Kind: obs.KindEnd, Scope: "core.keydist", Dur: int64(time.Millisecond)},
	}
	sums := AggregateTrace(events)
	if len(sums) != 3 {
		t.Fatalf("got %d scopes, want 3", len(sums))
	}
	// Sorted by total span time descending: instance (6ms) first.
	top := sums[0]
	if top.Scope != "campaign.instance" || top.Spans != 2 || top.Events != 4 {
		t.Errorf("top scope = %+v", top)
	}
	if top.Mean != 3*time.Millisecond || top.Max != 4*time.Millisecond {
		t.Errorf("instance mean/max = %v/%v", top.Mean, top.Max)
	}
	tbl := TraceTable(sums)
	if tbl.NumRows() != 3 {
		t.Errorf("trace table rows = %d", tbl.NumRows())
	}
}

func TestDiffRenderShowsRegression(t *testing.T) {
	d := DiffPerf(perfFixture(1000, 50), perfFixture(1500, 50), 10)
	var buf strings.Builder
	d.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "ns_per_op") {
		t.Errorf("render missing regression markers:\n%s", out)
	}
}
