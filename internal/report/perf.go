// Package report implements the analytics layer over the repository's
// JSON artifacts: fdcampaign/v1 campaign reports, fdbench-perf/v1
// benchmark suites, and obs JSONL traces. It diffs two artifacts of the
// same schema for conformance deltas and metric regressions against a
// threshold, renders sweep tables, and aggregates traces by scope —
// cmd/fdreport is a thin CLI over it, and CI uses the diff as the perf
// regression gate on the pinned BENCH trajectory.
package report

import (
	"encoding/json"
	"fmt"
	"os"
)

// PerfSchema identifies the fdbench-perf/v1 JSON layout (emitted by
// `fdbench -perf`, one BENCH_<pr>.json per PR at the repo root).
const PerfSchema = "fdbench-perf/v1"

// PerfResult is one benchmark's headline numbers. The service-level
// fields (P50Ns, P99Ns, OpsPerSec) are populated only by sustained-
// throughput rows — fdbench copies them out of the benchmark's
// ReportMetric extras — and stay zero/omitted for ordinary
// one-op-at-a-time rows.
type PerfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	// P50Ns and P99Ns are per-request latency percentiles under
	// sustained concurrent load (smaller is better); OpsPerSec is the
	// corresponding throughput (larger is better).
	P50Ns     float64 `json:"p50_ns,omitempty"`
	P99Ns     float64 `json:"p99_ns,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
}

// PerfReport is a full fdbench-perf/v1 document. The metadata block
// records where the numbers came from: fdbench stamps the Go version,
// GOMAXPROCS, the git commit when the binary carries VCS build info,
// and a free-form label (typically the PR), so two BENCH files are
// comparable with their provenance attached.
type PerfReport struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs,omitempty"`
	GitCommit  string       `json:"git_commit,omitempty"`
	Label      string       `json:"label,omitempty"`
	Timestamp  string       `json:"timestamp"`
	Benchmarks []PerfResult `json:"benchmarks"`
}

// LoadPerf reads and validates an fdbench-perf/v1 file.
func LoadPerf(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("report: parse %s: %w", path, err)
	}
	if rep.Schema != PerfSchema {
		return nil, fmt.Errorf("report: %s has schema %q, want %q", path, rep.Schema, PerfSchema)
	}
	return &rep, nil
}
