package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/campaign"
	"repro/internal/metrics"
)

// Entry is one comparison between the old and the new artifact: a cell
// (campaign group key or benchmark name), a metric within it, and the
// two values. Regressed entries fail the gate; Note carries structural
// findings (cells appearing or disappearing) that have no numeric pair.
type Entry struct {
	Cell      string  `json:"cell"`
	Metric    string  `json:"metric"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	DeltaPct  float64 `json:"delta_pct"`
	Regressed bool    `json:"regressed"`
	Note      string  `json:"note,omitempty"`
}

// Diff is the outcome of comparing two artifacts of the same schema.
// Entries lists only the comparisons that changed (or are structural
// notes); Compared counts every comparison made, changed or not, so the
// summary can say how much ground the gate actually covered.
type Diff struct {
	Schema    string  `json:"schema"`
	Threshold float64 `json:"threshold_pct"`
	OldLabel  string  `json:"old"`
	NewLabel  string  `json:"new"`
	Compared  int     `json:"compared"`
	Entries   []Entry `json:"entries"`
}

// Regressions returns the entries that fail the gate.
func (d *Diff) Regressions() []Entry {
	var out []Entry
	for _, e := range d.Entries {
		if e.Regressed {
			out = append(out, e)
		}
	}
	return out
}

// pctDelta is the relative change from old to new in percent. A zero
// baseline with a nonzero new value reads as +100% — enough to trip any
// sane threshold without manufacturing an infinity.
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return (new - old) / old * 100
}

// compare appends an entry when the value changed, marking it regressed
// when it grew past the threshold (all gated metrics here are
// smaller-is-better: ns/op, allocs, messages, bytes, rounds).
func (d *Diff) compare(cell, metric string, old, new float64) {
	d.Compared++
	if old == new {
		return
	}
	delta := pctDelta(old, new)
	d.Entries = append(d.Entries, Entry{
		Cell: cell, Metric: metric, Old: old, New: new,
		DeltaPct:  delta,
		Regressed: delta > d.Threshold,
	})
}

// compareRate is compare for larger-is-better metrics (throughput): an
// entry regresses when the value FELL past the threshold.
func (d *Diff) compareRate(cell, metric string, old, new float64) {
	d.Compared++
	if old == new {
		return
	}
	delta := pctDelta(old, new)
	d.Entries = append(d.Entries, Entry{
		Cell: cell, Metric: metric, Old: old, New: new,
		DeltaPct:  delta,
		Regressed: delta < -d.Threshold,
	})
}

// note appends a structural finding.
func (d *Diff) note(cell, metric, note string, regressed bool) {
	d.Entries = append(d.Entries, Entry{Cell: cell, Metric: metric, Note: note, Regressed: regressed})
}

// DiffCampaign compares two fdcampaign/v1 reports group by group.
// Conformance is gated exactly (any lost conformant run, any new
// violation predicate, any agreement drop regresses — correctness has
// no tolerance band); the cost distributions (messages, bytes, rounds)
// are gated on their means against the percent threshold.
func DiffCampaign(old, new *campaign.Report, thresholdPct float64) *Diff {
	d := &Diff{Schema: campaign.ReportSchema, Threshold: thresholdPct,
		OldLabel: old.Name, NewLabel: new.Name}
	newGroups := make(map[string]campaign.GroupSummary, len(new.Groups))
	for _, g := range new.Groups {
		newGroups[g.Key] = g
	}
	seen := make(map[string]bool, len(old.Groups))
	for _, og := range old.Groups {
		seen[og.Key] = true
		ng, ok := newGroups[og.Key]
		if !ok {
			d.note(og.Key, "group", "missing in new report", true)
			continue
		}
		// Correctness gates: exact.
		d.compare(og.Key, "errors", float64(og.Errors), float64(ng.Errors))
		if ng.AgreeRate < og.AgreeRate {
			d.Entries = append(d.Entries, Entry{Cell: og.Key, Metric: "agree_rate",
				Old: og.AgreeRate, New: ng.AgreeRate,
				DeltaPct: pctDelta(og.AgreeRate, ng.AgreeRate), Regressed: true})
		}
		oldRate, newRate := conformRate(og), conformRate(ng)
		if newRate < oldRate {
			d.Entries = append(d.Entries, Entry{Cell: og.Key, Metric: "conform_rate",
				Old: oldRate, New: newRate,
				DeltaPct: pctDelta(oldRate, newRate), Regressed: true})
		}
		for _, v := range newViolations(og.Violations, ng.Violations) {
			d.note(og.Key, "violation", "new violated predicate "+v, true)
		}
		// Cost gates: threshold on the distribution means.
		d.compare(og.Key, "messages.mean", og.Messages.Mean, ng.Messages.Mean)
		d.compare(og.Key, "bytes.mean", og.Bytes.Mean, ng.Bytes.Mean)
		d.compare(og.Key, "rounds.mean", og.Rounds.Mean, ng.Rounds.Mean)
		d.compare(og.Key, "comm_rounds.mean", og.CommRounds.Mean, ng.CommRounds.Mean)
		d.compare(og.Key, "signed_messages.mean", og.SignedMessages.Mean, ng.SignedMessages.Mean)
	}
	for _, ng := range new.Groups {
		if !seen[ng.Key] {
			d.note(ng.Key, "group", "new group (not in old report)", false)
		}
	}
	return d
}

// conformRate is the conformant fraction of a group's non-error runs.
func conformRate(g campaign.GroupSummary) float64 {
	ok := g.Instances - g.Errors
	if ok <= 0 {
		return 0
	}
	return float64(g.Conformant) / float64(ok)
}

// newViolations lists predicates violated in new but not in old.
func newViolations(old, new []string) []string {
	had := make(map[string]bool, len(old))
	for _, v := range old {
		had[v] = true
	}
	var out []string
	for _, v := range new {
		if !had[v] {
			out = append(out, v)
		}
	}
	return out
}

// DiffPerf compares two fdbench-perf/v1 suites benchmark by benchmark:
// ns/op and allocs/op against the percent threshold, plus — for
// sustained-throughput rows that carry them — p50/p99 latency
// (smaller-is-better) and ops/sec (larger-is-better). A benchmark that
// disappeared regresses (the gate lost coverage), and so does a row
// that silently lost its service-level metrics; a new one is noted.
func DiffPerf(old, new *PerfReport, thresholdPct float64) *Diff {
	d := &Diff{Schema: PerfSchema, Threshold: thresholdPct,
		OldLabel: labelOf(old), NewLabel: labelOf(new)}
	newBench := make(map[string]PerfResult, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		newBench[b.Name] = b
	}
	seen := make(map[string]bool, len(old.Benchmarks))
	for _, ob := range old.Benchmarks {
		seen[ob.Name] = true
		nb, ok := newBench[ob.Name]
		if !ok {
			d.note(ob.Name, "benchmark", "missing in new suite", true)
			continue
		}
		d.compare(ob.Name, "ns_per_op", ob.NsPerOp, nb.NsPerOp)
		d.compare(ob.Name, "allocs_per_op", float64(ob.AllocsPerOp), float64(nb.AllocsPerOp))
		if ob.P50Ns > 0 && nb.P50Ns > 0 {
			d.compare(ob.Name, "p50_ns", ob.P50Ns, nb.P50Ns)
		}
		if ob.P99Ns > 0 && nb.P99Ns > 0 {
			d.compare(ob.Name, "p99_ns", ob.P99Ns, nb.P99Ns)
		}
		if ob.OpsPerSec > 0 && nb.OpsPerSec > 0 {
			d.compareRate(ob.Name, "ops_per_sec", ob.OpsPerSec, nb.OpsPerSec)
		}
		if ob.OpsPerSec > 0 && nb.OpsPerSec == 0 {
			d.note(ob.Name, "ops_per_sec", "service-level metrics missing in new suite", true)
		}
	}
	for _, nb := range new.Benchmarks {
		if !seen[nb.Name] {
			d.note(nb.Name, "benchmark", "new benchmark (not in old suite)", false)
		}
	}
	return d
}

// labelOf names a perf report for the diff header: its label if
// stamped, else its commit, else its timestamp.
func labelOf(r *PerfReport) string {
	switch {
	case r.Label != "":
		return r.Label
	case r.GitCommit != "":
		return r.GitCommit
	default:
		return r.Timestamp
	}
}

// schemaProbe extracts just the schema tag for autodetection.
type schemaProbe struct {
	Schema string `json:"schema"`
}

// Detect returns the schema tag of a JSON artifact file.
func Detect(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var p schemaProbe
	if err := json.Unmarshal(data, &p); err != nil {
		return "", fmt.Errorf("report: parse %s: %w", path, err)
	}
	if p.Schema == "" {
		return "", fmt.Errorf("report: %s has no schema tag", path)
	}
	return p.Schema, nil
}

// LoadCampaign reads and validates an fdcampaign/v1 report file.
func LoadCampaign(path string) (*campaign.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep campaign.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("report: parse %s: %w", path, err)
	}
	if rep.Schema != campaign.ReportSchema {
		return nil, fmt.Errorf("report: %s has schema %q, want %q", path, rep.Schema, campaign.ReportSchema)
	}
	return &rep, nil
}

// DiffFiles autodetects the shared schema of two artifact files and
// dispatches to the matching differ.
func DiffFiles(oldPath, newPath string, thresholdPct float64) (*Diff, error) {
	oldSchema, err := Detect(oldPath)
	if err != nil {
		return nil, err
	}
	newSchema, err := Detect(newPath)
	if err != nil {
		return nil, err
	}
	if oldSchema != newSchema {
		return nil, fmt.Errorf("report: schema mismatch: %s is %q, %s is %q", oldPath, oldSchema, newPath, newSchema)
	}
	switch oldSchema {
	case campaign.ReportSchema:
		o, err := LoadCampaign(oldPath)
		if err != nil {
			return nil, err
		}
		n, err := LoadCampaign(newPath)
		if err != nil {
			return nil, err
		}
		return DiffCampaign(o, n, thresholdPct), nil
	case PerfSchema:
		o, err := LoadPerf(oldPath)
		if err != nil {
			return nil, err
		}
		n, err := LoadPerf(newPath)
		if err != nil {
			return nil, err
		}
		return DiffPerf(o, n, thresholdPct), nil
	default:
		return nil, fmt.Errorf("report: cannot diff schema %q", oldSchema)
	}
}

// Table renders the diff for humans: one row per changed comparison or
// structural note, status column flagging the gate failures.
func (d *Diff) Table() *metrics.Table {
	title := fmt.Sprintf("Diff %s: %q -> %q (threshold %.1f%%)", d.Schema, d.OldLabel, d.NewLabel, d.Threshold)
	tbl := metrics.NewTable(title, "cell", "metric", "old", "new", "delta%", "status")
	for _, e := range d.Entries {
		status := "ok"
		switch {
		case e.Regressed:
			status = "REGRESSED"
		case e.Note != "":
			status = "note"
		case e.DeltaPct < 0:
			status = "improved"
		}
		if e.Note != "" {
			tbl.AddRow(e.Cell, e.Metric, "-", "-", e.Note, status)
			continue
		}
		tbl.AddRow(e.Cell, e.Metric, e.Old, e.New, fmt.Sprintf("%+.2f", e.DeltaPct), status)
	}
	return tbl
}

// Render writes the human diff: the table of changes (or a no-change
// line) and a one-line summary of coverage and verdict.
func (d *Diff) Render(w io.Writer) {
	if len(d.Entries) == 0 {
		fmt.Fprintf(w, "no changes across %d comparisons (threshold %.1f%%)\n", d.Compared, d.Threshold)
		return
	}
	d.Table().Render(w)
	reg := len(d.Regressions())
	fmt.Fprintf(w, "%d comparisons, %d changed, %d regression(s) at threshold %.1f%%\n",
		d.Compared, len(d.Entries), reg, d.Threshold)
}
